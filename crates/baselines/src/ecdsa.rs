//! ECDSA over NIST P-256 with SHA-256.
//!
//! Used by the integrity extension (`timecrypt-integrity`) to let data
//! owners sign Merkle root attestations that consumers verify — the
//! Verena-style freshness/completeness add-on the paper names in §3.3.
//! Built on the same from-scratch [`p256`](crate::p256) group arithmetic as
//! the EC-ElGamal baseline. Not constant-time (see the p256 module note);
//! it authenticates public metadata, it does not guard long-lived secrets
//! against local side channels.

use crate::bn::BigUint;
use crate::p256::{curve, Point};
use timecrypt_crypto::{sha256, SecureRandom};

/// An ECDSA signature: the standard `(r, s)` pair, each in `[1, n-1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// x-coordinate of the nonce point, mod the group order.
    pub r: BigUint,
    /// Proof scalar `k⁻¹(z + r·d) mod n`.
    pub s: BigUint,
}

impl Signature {
    /// Fixed 64-byte encoding: `r || s`, each 32 bytes big-endian.
    pub fn encode(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_bytes_be_padded(32));
        out[32..].copy_from_slice(&self.s.to_bytes_be_padded(32));
        out
    }

    /// Parses [`encode`](Self::encode) output; range-checks both scalars.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() != 64 {
            return None;
        }
        let n = &curve().n;
        let r = BigUint::from_bytes_be(&buf[..32]);
        let s = BigUint::from_bytes_be(&buf[32..]);
        if r.is_zero() || s.is_zero() {
            return None;
        }
        if r.cmp_val(n) != std::cmp::Ordering::Less || s.cmp_val(n) != std::cmp::Ordering::Less {
            return None;
        }
        Some(Signature { r, s })
    }
}

/// A signing key (scalar `d`) with its public point `Q = d·G`.
#[derive(Debug, Clone)]
pub struct SigningKey {
    d: BigUint,
    public: Point,
}

/// The verification half of a [`SigningKey`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyingKey {
    /// The public point `Q`.
    pub point: Point,
}

/// Message hash as an integer per SEC1 §4.1.3: the leftmost `log2(n)` bits.
/// For P-256 with SHA-256 that is the whole 32-byte digest.
fn hash_to_scalar(msg: &[u8]) -> BigUint {
    BigUint::from_bytes_be(&sha256(msg))
}

impl SigningKey {
    /// Generates a fresh random key.
    pub fn generate(rng: &mut SecureRandom) -> Self {
        let d = curve().random_scalar(rng);
        Self::from_scalar(d).expect("random_scalar is in [1, n-1]")
    }

    /// Builds a key from a raw scalar; `None` if `d` is 0 or ≥ n.
    pub fn from_scalar(d: BigUint) -> Option<Self> {
        let c = curve();
        if d.is_zero() || d.cmp_val(&c.n) != std::cmp::Ordering::Less {
            return None;
        }
        let public = c.scalar_mul_base(&d);
        Some(SigningKey { d, public })
    }

    /// The verification key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            point: self.public.clone(),
        }
    }

    /// Signs `SHA-256(msg)` with a random per-signature nonce.
    pub fn sign(&self, msg: &[u8], rng: &mut SecureRandom) -> Signature {
        loop {
            let k = curve().random_scalar(rng);
            if let Some(sig) = self.sign_with_nonce(msg, &k) {
                return sig;
            }
        }
    }

    /// Signs with a caller-supplied nonce. Returns `None` when the nonce
    /// yields `r = 0` or `s = 0` (the caller must retry with a fresh one).
    ///
    /// Exposed so tests can pin the RFC 6979 known-answer nonce. NEVER reuse
    /// a nonce across two messages — doing so reveals the private key.
    pub fn sign_with_nonce(&self, msg: &[u8], k: &BigUint) -> Option<Signature> {
        let c = curve();
        let z = hash_to_scalar(msg);
        let (x, _) = c.scalar_mul_base(k).coords?;
        let r = x.rem(&c.n);
        if r.is_zero() {
            return None;
        }
        // s = k⁻¹ (z + r·d) mod n
        let k_inv = k.rem(&c.n).modinv_odd(&c.n)?;
        let rd = r.mul(&self.d).rem(&c.n);
        let s = k_inv.mul(&z.rem(&c.n).add_mod(&rd, &c.n)).rem(&c.n);
        if s.is_zero() {
            return None;
        }
        Some(Signature { r, s })
    }
}

impl VerifyingKey {
    /// Verifies `sig` over `SHA-256(msg)`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let c = curve();
        if self.point.is_infinity() || !c.is_on_curve(&self.point) {
            return false;
        }
        let less = |a: &BigUint| !a.is_zero() && a.cmp_val(&c.n) == std::cmp::Ordering::Less;
        if !less(&sig.r) || !less(&sig.s) {
            return false;
        }
        let z = hash_to_scalar(msg);
        let Some(w) = sig.s.modinv_odd(&c.n) else {
            return false;
        };
        let u1 = z.rem(&c.n).mul(&w).rem(&c.n);
        let u2 = sig.r.mul(&w).rem(&c.n);
        let point = c.add(&c.scalar_mul_base(&u1), &c.scalar_mul(&u2, &self.point));
        match point.coords {
            None => false,
            Some((x, _)) => x.rem(&c.n) == sig.r,
        }
    }

    /// SEC1 uncompressed encoding of the public point.
    pub fn encode(&self) -> Vec<u8> {
        self.point.encode()
    }

    /// Parses [`encode`](Self::encode) output (checks curve membership).
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let (point, used) = Point::decode(buf)?;
        if used != buf.len() || point.is_infinity() {
            return None;
        }
        Some(VerifyingKey { point })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(s: &str) -> BigUint {
        BigUint::from_hex(s).unwrap()
    }

    /// RFC 6979 §A.2.5, P-256 + SHA-256, message "sample": the full
    /// known-answer chain — public key, nonce, r, s.
    #[test]
    fn rfc6979_known_answer() {
        let d = h("C9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721");
        let key = SigningKey::from_scalar(d).unwrap();
        let vk = key.verifying_key();
        let (x, y) = vk.point.coords.clone().unwrap();
        assert_eq!(
            x,
            h("60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6")
        );
        assert_eq!(
            y,
            h("7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299")
        );

        let k = h("A6E3C57DD01ABE90086538398355DD4C3B17AA873382B0F24D6129493D8AAD60");
        let sig = key.sign_with_nonce(b"sample", &k).unwrap();
        assert_eq!(
            sig.r,
            h("EFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716")
        );
        assert_eq!(
            sig.s,
            h("F7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8")
        );
        assert!(vk.verify(b"sample", &sig));
    }

    /// Second RFC 6979 vector (message "test") against the same key.
    #[test]
    fn rfc6979_second_message() {
        let d = h("C9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721");
        let key = SigningKey::from_scalar(d).unwrap();
        let k = h("D16B6AE827F17175E040871A1C7EC3500192C4C92677336EC2537ACAEE0008E0");
        let sig = key.sign_with_nonce(b"test", &k).unwrap();
        assert_eq!(
            sig.r,
            h("F1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367")
        );
        assert_eq!(
            sig.s,
            h("019F4113742A2B14BD25926B49C649155F267E60D3814B4C0CC84250E46F0083")
        );
        assert!(key.verifying_key().verify(b"test", &sig));
    }

    #[test]
    fn sign_verify_roundtrip_random_keys() {
        let mut rng = SecureRandom::from_seed_insecure(7);
        for i in 0..4u8 {
            let key = SigningKey::generate(&mut rng);
            let msg = [i; 37];
            let sig = key.sign(&msg, &mut rng);
            assert!(key.verifying_key().verify(&msg, &sig));
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let mut rng = SecureRandom::from_seed_insecure(8);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"root attestation v1", &mut rng);
        assert!(!key.verifying_key().verify(b"root attestation v2", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut rng = SecureRandom::from_seed_insecure(9);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"msg", &mut rng);
        let mut bad = sig.clone();
        bad.s = bad.s.add_mod(&BigUint::one(), &curve().n);
        assert!(!key.verifying_key().verify(b"msg", &bad));
        let mut bad = sig;
        bad.r = bad.r.add_mod(&BigUint::one(), &curve().n);
        assert!(!key.verifying_key().verify(b"msg", &bad));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = SecureRandom::from_seed_insecure(10);
        let alice = SigningKey::generate(&mut rng);
        let mallory = SigningKey::generate(&mut rng);
        let sig = alice.sign(b"msg", &mut rng);
        assert!(!mallory.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn signature_codec_roundtrip() {
        let mut rng = SecureRandom::from_seed_insecure(11);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"payload", &mut rng);
        let decoded = Signature::decode(&sig.encode()).unwrap();
        assert_eq!(decoded, sig);
        assert!(key.verifying_key().verify(b"payload", &decoded));
    }

    #[test]
    fn signature_decode_rejects_out_of_range() {
        assert!(Signature::decode(&[0u8; 64]).is_none(), "r = s = 0");
        assert!(Signature::decode(&[0u8; 63]).is_none(), "short");
        let mut buf = [0xffu8; 64]; // r = s = 2^256 - 1 > n
        buf[0] = 0xff;
        assert!(Signature::decode(&buf).is_none());
    }

    #[test]
    fn verifying_key_codec_roundtrip() {
        let mut rng = SecureRandom::from_seed_insecure(12);
        let vk = SigningKey::generate(&mut rng).verifying_key();
        assert_eq!(VerifyingKey::decode(&vk.encode()).unwrap(), vk);
        assert!(VerifyingKey::decode(&[0u8]).is_none(), "infinity rejected");
        assert!(VerifyingKey::decode(b"junk").is_none());
    }

    #[test]
    fn zero_and_oversize_scalars_rejected_as_keys() {
        assert!(SigningKey::from_scalar(BigUint::zero()).is_none());
        assert!(SigningKey::from_scalar(curve().n.clone()).is_none());
    }
}
