//! The Paillier cryptosystem — the paper's first strawman digest encryption
//! (Table 2/3, Fig. 5/7: "Paillier", 3072-bit keys at 128-bit security).
//!
//! Standard construction with `g = n + 1`, which gives the fast encryption
//! path `c = (1 + m·n) · r^n mod n²` and decryption
//! `m = L(c^λ mod n²) · λ^{-1} mod n`, `L(x) = (x−1)/n`.
//!
//! Ciphertexts are `n²`-sized — 768 bytes at 3072-bit keys versus
//! TimeCrypt's 8 bytes, the 96x index expansion of Table 2.

use crate::bn::BigUint;
use crate::mont::Mont;
use crate::prime::gen_prime;
use std::sync::{Arc, Mutex, OnceLock};
use timecrypt_crypto::SecureRandom;
use timecrypt_index::HomDigest;

/// Public parameters (enough to encrypt and aggregate).
#[derive(Debug, Clone)]
pub struct PaillierPublic {
    /// The modulus n.
    pub n: BigUint,
    /// n².
    pub n2: BigUint,
    /// Montgomery context mod n² (aggregation and encryption live here).
    mont_n2: Mont,
    /// Serialized ciphertext size in bytes.
    ct_bytes: usize,
    /// Registry id for [`HomDigest`] decoding.
    key_id: u64,
}

/// Full keypair.
pub struct Paillier {
    /// Public half.
    pub public: Arc<PaillierPublic>,
    /// λ = (p−1)(q−1)/gcd(p−1, q−1).
    lambda: BigUint,
    /// μ = λ^{-1} mod n.
    mu: BigUint,
}

/// Global registry so [`PaillierDigest::decode`] can recover the modulus
/// (ciphertext bytes deliberately exclude it — the paper's 96x expansion
/// figure counts ciphertext size only). Bench/server-side only.
fn registry() -> &'static Mutex<Vec<Arc<PaillierPublic>>> {
    static REG: OnceLock<Mutex<Vec<Arc<PaillierPublic>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

fn lookup(key_id: u64) -> Option<Arc<PaillierPublic>> {
    registry().lock().unwrap().get(key_id as usize).cloned()
}

impl Paillier {
    /// Generates a keypair with an n of `n_bits` (3072 for the paper's
    /// 128-bit setting, 1024 for the 80-bit IoT comparison in Table 3).
    pub fn generate(n_bits: usize, rng: &mut SecureRandom) -> Self {
        let half = n_bits / 2;
        let (p, q) = loop {
            let p = gen_prime(half, rng);
            let q = gen_prime(half, rng);
            if p != q {
                break (p, q);
            }
        };
        let n = p.mul(&q);
        let n2 = n.mul(&n);
        let p1 = p.sub(&BigUint::one());
        let q1 = q.sub(&BigUint::one());
        let lambda = p1.mul(&q1).div_rem(&p1.gcd(&q1)).0;
        let mu = lambda.modinv_odd(&n).expect("lambda invertible mod n");
        let mont_n2 = Mont::new(&n2);
        let ct_bytes = n2.to_bytes_be().len();
        let mut reg = registry().lock().unwrap();
        let key_id = reg.len() as u64;
        let public = Arc::new(PaillierPublic {
            n,
            n2,
            mont_n2,
            ct_bytes,
            key_id,
        });
        reg.push(public.clone());
        drop(reg);
        Paillier { public, lambda, mu }
    }

    /// Decrypts an aggregate ciphertext to a u64 (the digest element space).
    pub fn decrypt(&self, ct: &PaillierCiphertext) -> u64 {
        let pb = &self.public;
        let x = pb.mont_n2.pow(&ct.c, &self.lambda);
        // L(x) = (x - 1) / n (exact division).
        let l = x.sub(&BigUint::one()).div_rem(&pb.n).0;
        let m = Mont::new(&pb.n).modmul(&l, &self.mu);
        m.low_u64()
    }

    /// Decrypts to the full residue mod n (for values exceeding u64).
    pub fn decrypt_full(&self, ct: &PaillierCiphertext) -> BigUint {
        let pb = &self.public;
        let x = pb.mont_n2.pow(&ct.c, &self.lambda);
        let l = x.sub(&BigUint::one()).div_rem(&pb.n).0;
        Mont::new(&pb.n).modmul(&l, &self.mu)
    }
}

impl PaillierPublic {
    /// Encrypts `m` (u64 digest element) with fresh randomness:
    /// `c = (1 + m·n) · r^n mod n²`.
    pub fn encrypt(&self, m: u64, rng: &mut SecureRandom) -> PaillierCiphertext {
        // r uniform in [1, n): sample wide and reduce.
        let mut bytes = vec![0u8; self.n.to_bytes_be().len() + 16];
        rng.fill(&mut bytes);
        let r = BigUint::from_bytes_be(&bytes)
            .rem(&self.n.sub(&BigUint::one()))
            .add(&BigUint::one());
        let rn = self.mont_n2.pow(&r, &self.n);
        let gm = BigUint::one()
            .add(&BigUint::from_u64(m).mul(&self.n))
            .rem(&self.n2);
        let c = self.mont_n2.modmul(&gm, &rn);
        PaillierCiphertext {
            c,
            key_id: self.key_id,
            ct_bytes: self.ct_bytes,
        }
    }

    /// Homomorphic addition: ciphertext multiplication mod n².
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext {
            c: self.mont_n2.modmul(&a.c, &b.c),
            key_id: self.key_id,
            ct_bytes: self.ct_bytes,
        }
    }

    /// The additive identity: Enc(0) with r = 1, i.e. ciphertext 1.
    pub fn zero(&self) -> PaillierCiphertext {
        PaillierCiphertext {
            c: BigUint::one(),
            key_id: self.key_id,
            ct_bytes: self.ct_bytes,
        }
    }

    /// Serialized ciphertext size (Table 2's memory accounting).
    pub fn ciphertext_bytes(&self) -> usize {
        self.ct_bytes
    }
}

/// A Paillier ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierCiphertext {
    c: BigUint,
    key_id: u64,
    ct_bytes: usize,
}

/// A digest vector of Paillier ciphertexts, pluggable into the aggregation
/// index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaillierDigest(pub Vec<PaillierCiphertext>);

impl HomDigest for PaillierDigest {
    fn zero_like(&self) -> Self {
        PaillierDigest(
            self.0
                .iter()
                .map(|ct| PaillierCiphertext {
                    c: BigUint::one(),
                    key_id: ct.key_id,
                    ct_bytes: ct.ct_bytes,
                })
                .collect(),
        )
    }

    fn add_assign(&mut self, other: &Self) {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            let pb = lookup(a.key_id).expect("paillier key registered");
            *a = pb.add(a, b);
        }
    }

    fn encoded_len(&self) -> usize {
        // 4-byte count + per-element (8-byte key id + fixed-size residue).
        4 + self.0.iter().map(|ct| 8 + ct.ct_bytes).sum::<usize>()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.0.len() as u32).to_le_bytes());
        for ct in &self.0 {
            out.extend_from_slice(&ct.key_id.to_le_bytes());
            out.extend_from_slice(&ct.c.to_bytes_be_padded(ct.ct_bytes));
        }
    }

    fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        let mut pos = 4;
        let mut cts = Vec::with_capacity(n);
        for _ in 0..n {
            if buf.len() < pos + 8 {
                return None;
            }
            let key_id = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let pb = lookup(key_id)?;
            let ct_bytes = pb.ct_bytes;
            if buf.len() < pos + ct_bytes {
                return None;
            }
            let c = BigUint::from_bytes_be(&buf[pos..pos + ct_bytes]);
            pos += ct_bytes;
            cts.push(PaillierCiphertext {
                c,
                key_id,
                ct_bytes,
            });
        }
        Some((PaillierDigest(cts), pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_keypair() -> (Paillier, SecureRandom) {
        let mut rng = SecureRandom::from_seed_insecure(42);
        // 256-bit n keeps tests fast; benches use 1024/3072.
        let kp = Paillier::generate(256, &mut rng);
        (kp, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (kp, mut rng) = small_keypair();
        for m in [0u64, 1, 42, u32::MAX as u64, u64::MAX] {
            let ct = kp.public.encrypt(m, &mut rng);
            assert_eq!(kp.decrypt(&ct), m, "m={m}");
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let (kp, mut rng) = small_keypair();
        let a = kp.public.encrypt(7, &mut rng);
        let b = kp.public.encrypt(7, &mut rng);
        assert_ne!(a, b, "same plaintext must give different ciphertexts");
        assert_eq!(kp.decrypt(&a), kp.decrypt(&b));
    }

    #[test]
    fn additive_homomorphism() {
        let (kp, mut rng) = small_keypair();
        let values = [3u64, 1000, 999_999_999, 5];
        let mut acc = kp.public.zero();
        for &v in &values {
            let ct = kp.public.encrypt(v, &mut rng);
            acc = kp.public.add(&acc, &ct);
        }
        assert_eq!(kp.decrypt(&acc), values.iter().sum::<u64>());
    }

    #[test]
    fn zero_is_identity() {
        let (kp, mut rng) = small_keypair();
        let ct = kp.public.encrypt(123, &mut rng);
        let sum = kp.public.add(&ct, &kp.public.zero());
        assert_eq!(kp.decrypt(&sum), 123);
    }

    #[test]
    fn hom_digest_roundtrip_through_bytes() {
        let (kp, mut rng) = small_keypair();
        let d = PaillierDigest(vec![
            kp.public.encrypt(10, &mut rng),
            kp.public.encrypt(20, &mut rng),
        ]);
        let mut buf = Vec::new();
        d.encode(&mut buf);
        assert_eq!(buf.len(), d.encoded_len());
        let (d2, used) = PaillierDigest::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(kp.decrypt(&d2.0[0]), 10);
        assert_eq!(kp.decrypt(&d2.0[1]), 20);
    }

    #[test]
    fn hom_digest_add() {
        let (kp, mut rng) = small_keypair();
        let mut a = PaillierDigest(vec![kp.public.encrypt(5, &mut rng)]);
        let b = PaillierDigest(vec![kp.public.encrypt(6, &mut rng)]);
        a.add_assign(&b);
        assert_eq!(kp.decrypt(&a.0[0]), 11);
        // zero_like is the identity.
        let z = a.zero_like();
        a.add_assign(&z);
        assert_eq!(kp.decrypt(&a.0[0]), 11);
    }

    #[test]
    fn ciphertext_expansion_matches_paper_ratio() {
        let (kp, _) = small_keypair();
        // n² bytes per 8-byte plaintext: for a 3072-bit key this is 96x
        // (Table 2); at 256-bit test keys it is 64/8 = 8x.
        assert_eq!(kp.public.ciphertext_bytes(), 64);
    }
}
