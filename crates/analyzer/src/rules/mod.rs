//! The seven repo-specific rules. Each exposes `NAME` (the identifier
//! used in `lint: allow(...)`) and a check that appends [`Violation`]s.
//! Per-file rules take a [`SourceFile`]; the interprocedural rules
//! (`lock-ordering`, `blocking-under-lock`) run over the workspace call
//! graph and its fixpoint summaries, built once per analysis.

pub mod atomics;
pub mod blocking;
pub mod lock_order;
pub mod no_alloc;
pub mod panic_freedom;
pub mod unsafe_hygiene;
pub mod wire_tags;

use crate::callgraph;
use crate::config::Config;
use crate::scan::SourceFile;
use crate::Violation;

/// Runs every rule over every file, including malformed-directive
/// diagnostics, and returns the violations sorted by path and line.
pub fn run_all(cfg: &Config, files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        out.extend(f.directive_errors.iter().cloned());
        unsafe_hygiene::check(f, &mut out);
        panic_freedom::check(cfg, f, &mut out);
        wire_tags::check(cfg, f, &mut out);
        no_alloc::check(f, &mut out);
        atomics::check(cfg, f, &mut out);
    }
    let graph = callgraph::build(cfg, files);
    let sums = callgraph::summarize(&graph);
    lock_order::check_all(cfg, files, &graph, &sums, &mut out);
    blocking::check_all(cfg, files, &graph, &sums, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}
