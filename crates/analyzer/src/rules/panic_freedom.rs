//! Rule `panic-freedom`: non-test code in the hot-path crates (the list
//! lives in `analyzer.toml`) must not call `.unwrap()`, `.expect(…)`, or
//! the panicking macros. Failures on those paths must propagate as `Err`
//! or be allowlisted with a written proof of unreachability.

use crate::config::Config;
use crate::scan::SourceFile;
use crate::Violation;

pub const NAME: &str = "panic-freedom";

/// Panicking macros; matched as `name!` not preceded by an ident char, so
/// `dont_panic!()` or a method named `expect_len` never trips.
const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn check(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if !cfg.panic_free_crates.iter().any(|c| c == &f.crate_name) {
        return;
    }
    for (idx, l) in f.lines.iter().enumerate() {
        if f.in_test[idx] || f.allowed(idx, NAME) {
            continue;
        }
        let mut hit: Option<String> = None;
        if l.code.contains(".unwrap()") {
            hit = Some(".unwrap()".into());
        } else if l.code.contains(".expect(") {
            hit = Some(".expect(…)".into());
        } else {
            for m in MACROS {
                if macro_call(&l.code, m) {
                    hit = Some(format!("{m}!"));
                    break;
                }
            }
        }
        if let Some(what) = hit {
            out.push(Violation {
                rule: NAME,
                path: f.rel_path.clone(),
                line: idx + 1,
                msg: format!(
                    "{what} in non-test code of hot-path crate `{}`",
                    f.crate_name
                ),
                chain: Vec::new(),
            });
        }
    }
}

/// True if `code` invokes the macro `name!`.
fn macro_call(code: &str, name: &str) -> bool {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find(name) {
        let at = from + p;
        let end = at + name.len();
        let left_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        if left_ok && b.get(end) == Some(&b'!') {
            return true;
        }
        from = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(crate_name: &str, src: &str) -> Vec<Violation> {
        let cfg = Config {
            panic_free_crates: vec!["wire".into()],
            ..Config::default()
        };
        let f = SourceFile::parse("fixture.rs", crate_name, src);
        let mut v = Vec::new();
        check(&cfg, &f, &mut v);
        v
    }

    #[test]
    fn fires_on_unwrap_expect_and_macros() {
        let v = run(
            "wire",
            "fn f() {\n  x.unwrap();\n  y.expect(\"msg\");\n  panic!(\"boom\");\n  unreachable!();\n}\n",
        );
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter().map(|x| x.line).collect::<Vec<_>>(), [2, 3, 4, 5]);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let v = run(
            "wire",
            "fn f() {\n  x.unwrap_or(0);\n  y.unwrap_or_else(|e| e.into_inner());\n  z.unwrap_or_default();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn test_code_and_other_crates_are_exempt() {
        assert!(run(
            "wire",
            "#[cfg(test)]\nmod t {\n  fn f() { x.unwrap(); }\n}\n"
        )
        .is_empty());
        assert!(run("bench", "fn f() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let v = run(
            "wire",
            "fn f() {\n  let s = \".unwrap()\";\n  // calls .expect( here\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn allowlisted_site_passes() {
        let v = run(
            "wire",
            "fn f() {\n  x.unwrap(); // lint: allow(panic-freedom) — len checked two lines up\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn similarly_named_macros_do_not_fire() {
        assert!(run("wire", "fn f() { dont_panic!(); }\n").is_empty());
    }
}
