//! Rule `unsafe-hygiene`: every `unsafe` occurrence (block, fn, impl)
//! must be immediately preceded by a comment stating the invariant —
//! `// SAFETY:` for blocks, or a `# Safety` doc section for `unsafe fn`s.
//! "Immediately" means the comment block directly above the line (doc
//! comments and attributes may sit in between), or a trailing comment on
//! the line itself.

use crate::lexer::has_word;
use crate::scan::SourceFile;
use crate::Violation;

pub const NAME: &str = "unsafe-hygiene";

pub fn check(f: &SourceFile, out: &mut Vec<Violation>) {
    for idx in 0..f.lines.len() {
        if !has_word(&f.lines[idx].code, "unsafe") {
            continue;
        }
        if f.allowed(idx, NAME) || documented(f, idx) {
            continue;
        }
        out.push(Violation {
            rule: NAME,
            path: f.rel_path.clone(),
            line: idx + 1,
            msg: "`unsafe` without an immediately preceding `// SAFETY:` comment \
                  (or `# Safety` doc section)"
                .to_string(),
            chain: Vec::new(),
        });
    }
}

/// True if the `unsafe` on line `idx` carries a safety comment: on the
/// line itself, or in the contiguous comment/attribute block above it.
fn documented(f: &SourceFile, idx: usize) -> bool {
    if is_safety(&f.lines[idx].comment) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &f.lines[j];
        let code = l.code.trim();
        // Attributes (`#[target_feature(...)]`) and blank/comment-only
        // lines keep the comment block "immediately preceding"; anything
        // else breaks adjacency.
        let pass_through = code.is_empty() || code.starts_with("#[") || code.starts_with("#!");
        if is_safety(&l.comment) {
            return true;
        }
        if !pass_through {
            return false;
        }
    }
    false
}

fn is_safety(comment: &str) -> bool {
    comment.contains("SAFETY:") || comment.contains("# Safety")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("fixture.rs", "crypto", src);
        let mut v = Vec::new();
        check(&f, &mut v);
        v
    }

    #[test]
    fn fires_on_undocumented_unsafe_block() {
        let v = run("fn f() {\n    let x = unsafe { intrinsic() };\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, NAME);
    }

    #[test]
    fn safety_comment_directly_above_passes() {
        let v = run("fn f() {\n    // SAFETY: aes checked at startup\n    let x = unsafe { intrinsic() };\n}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn_through_attributes() {
        let v = run(
            "/// # Safety\n/// Caller must have verified the `aes` feature.\n#[target_feature(enable = \"aes\")]\npub unsafe fn expand(k: &[u8]) {}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn intervening_code_breaks_adjacency() {
        let v = run("// SAFETY: stale comment\nlet y = 1;\nlet x = unsafe { f() };\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let v = run("/// not unsafe at all\nlet s = \"unsafe\";\n");
        assert!(v.is_empty());
    }

    #[test]
    fn allowlisted_unsafe_passes() {
        let v = run("// lint: allow(unsafe-hygiene) — documented at module level\nlet x = unsafe { f() };\n");
        assert!(v.is_empty());
    }
}
