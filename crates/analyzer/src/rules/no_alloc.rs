//! Rule `no-alloc`: a function annotated `// lint: deny(alloc)` is a
//! zero-copy seam — its body must not allocate. The banned tokens are the
//! allocation entry points that past PRs actually removed from these
//! paths (`encode_into`, `handle_frame`, `seal_into`/`open_into`, the
//! scratch-buffer send paths); reintroducing one silently reverts the
//! optimization without failing any functional test.

use crate::scan::SourceFile;
use crate::Violation;

pub const NAME: &str = "no-alloc";

/// Substring-matched allocation tokens (the leading `.`/`::` already
/// prevents identifier-prefix false matches).
const CONTAINS: [&str; 9] = [
    ".to_vec()",
    ".clone()",
    "Vec::new",
    "String::from",
    "String::new",
    ".to_owned()",
    ".to_string()",
    "Box::new",
    "::with_capacity",
];

/// Allocating macros, matched as `name!`.
const MACROS: [&str; 2] = ["vec", "format"];

pub fn check(f: &SourceFile, out: &mut Vec<Violation>) {
    if f.deny_alloc.is_empty() {
        return;
    }
    let fns = f.functions();
    for &marker in &f.deny_alloc {
        // The marker governs the first fn at or after it (attributes and
        // doc comments may sit between).
        let Some(span) = fns.iter().find(|s| s.header >= marker) else {
            out.push(Violation {
                rule: NAME,
                path: f.rel_path.clone(),
                line: marker + 1,
                msg: "`lint: deny(alloc)` with no following function".to_string(),
                chain: Vec::new(),
            });
            continue;
        };
        for li in span.header..=span.body_close.line {
            if f.allowed(li, NAME) {
                continue;
            }
            let code = &f.lines[li].code;
            let hit = CONTAINS
                .iter()
                .find(|t| code.contains(**t))
                .copied()
                .map(|t| t.to_string())
                .or_else(|| {
                    MACROS
                        .iter()
                        .find(|m| macro_call(code, m))
                        .map(|m| format!("{m}!"))
                });
            if let Some(token) = hit {
                out.push(Violation {
                    rule: NAME,
                    path: f.rel_path.clone(),
                    line: li + 1,
                    msg: format!(
                        "`{token}` allocates inside no-alloc zone `fn {}`",
                        span.name
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}

fn macro_call(code: &str, name: &str) -> bool {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find(name) {
        let at = from + p;
        let end = at + name.len();
        let left_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        if left_ok && b.get(end) == Some(&b'!') {
            return true;
        }
        from = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("fixture.rs", "wire", src);
        let mut v = Vec::new();
        check(&f, &mut v);
        v
    }

    #[test]
    fn allocation_in_zone_fires() {
        let v = run("// lint: deny(alloc)\nfn hot(out: &mut Vec<u8>) {\n  let c = buf.to_vec();\n  let s = format!(\"x\");\n}\n");
        assert_eq!(v.len(), 2);
        assert!(v[0].msg.contains(".to_vec()"));
        assert!(v[1].msg.contains("format!"));
        assert!(v[0].msg.contains("fn hot"));
    }

    #[test]
    fn unannotated_fn_is_free_to_allocate() {
        let v = run("fn cold() {\n  let c = buf.to_vec();\n}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn clean_zone_passes() {
        let v = run("// lint: deny(alloc)\nfn hot(out: &mut Vec<u8>) {\n  out.extend_from_slice(&buf);\n}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn allowlisted_line_passes() {
        let v = run("// lint: deny(alloc)\nfn hot() {\n  let e = format!(\"err\"); // lint: allow(no-alloc) — cold error path\n}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn marker_without_fn_is_reported() {
        let v = run("// lint: deny(alloc)\nconst X: u32 = 1;\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("no following function"));
    }

    #[test]
    fn zone_ends_with_the_function() {
        let v = run("// lint: deny(alloc)\nfn hot() {\n  fast();\n}\nfn cold() {\n  let c = x.clone();\n}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn clone_in_identifier_does_not_fire() {
        let v =
            run("// lint: deny(alloc)\nfn hot() {\n  let c = self.clone_count;\n  vector();\n}\n");
        assert!(v.is_empty());
    }
}
