//! Rule `lock-ordering`: nested lock acquisitions checked against the
//! documented global order (loaded from `analyzer.toml`, outermost class
//! first). Acquiring a lower-ranked (outer) class while a guard of a
//! higher-ranked (inner) class is live is an inversion — two threads
//! doing it in opposite orders deadlock.
//!
//! Two layers share the held-set facts from [`crate::heldset`]:
//! - **Local**: an acquisition inside one body while a higher-ranked
//!   guard is held (the original per-function check).
//! - **Interprocedural**: a call made while holding a guard, where the
//!   callee — possibly several frames down — may acquire a lower-ranked
//!   class. The diagnostic carries the full witness chain, e.g.
//!   `` `a` holds `registry` and calls `b` → `b` calls `c` →
//!   `c` acquires `roles` ``.

use std::collections::HashSet;

use crate::callgraph::{Graph, Summary};
use crate::config::Config;
use crate::scan::SourceFile;
use crate::Violation;

pub const NAME: &str = "lock-ordering";

pub fn check_all(
    cfg: &Config,
    files: &[SourceFile],
    g: &Graph,
    sums: &[Summary],
    out: &mut Vec<Violation>,
) {
    if cfg.lock_order.is_empty() {
        return;
    }
    let order: Vec<&str> = cfg.lock_order.iter().map(|(c, _)| c.as_str()).collect();
    let order_doc = order.join(" → ");
    for (di, d) in g.defs.iter().enumerate() {
        let f = &files[d.file];
        // Local inversions within this body.
        for a in &d.facts.acquires {
            let Some(held) = a
                .held
                .iter()
                .filter(|h| h.rank > a.rank)
                .max_by_key(|h| h.rank)
            else {
                continue;
            };
            if f.allowed(a.line, NAME) {
                continue;
            }
            out.push(Violation {
                rule: NAME,
                path: f.rel_path.clone(),
                line: a.line + 1,
                msg: format!(
                    "acquires `{}` while holding `{}` — documented order is {order_doc}",
                    a.class, held.class
                ),
                chain: Vec::new(),
            });
        }
        // Interprocedural: what a callee may acquire vs what's held here.
        // One diagnostic per (call line, acquired class), however many
        // same-name defs the site over-approximates to.
        let mut seen: HashSet<(usize, String)> = HashSet::new();
        for (ci, callees) in g.edges[di].iter().enumerate() {
            let call = &d.facts.calls[ci];
            if call.held.is_empty() {
                continue;
            }
            for &c in callees {
                for (rank, info) in &sums[c].may_acquire {
                    let Some(held) = call
                        .held
                        .iter()
                        .filter(|h| h.rank > *rank)
                        .max_by_key(|h| h.rank)
                    else {
                        continue;
                    };
                    if f.allowed(call.line, NAME) {
                        continue;
                    }
                    if !seen.insert((call.line, info.class.clone())) {
                        continue;
                    }
                    let mut chain = vec![format!(
                        "`{}` holds `{}` and calls `{}` ({}:{})",
                        d.name,
                        held.class,
                        call.name,
                        d.path,
                        call.line + 1
                    )];
                    chain.extend(info.chain.iter().cloned());
                    out.push(Violation {
                        rule: NAME,
                        path: f.rel_path.clone(),
                        line: call.line + 1,
                        msg: format!(
                            "calling `{}` may acquire `{}` while holding `{}` — documented order is {order_doc}",
                            call.name, info.class, held.class
                        ),
                        chain,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;

    fn cfg() -> Config {
        Config {
            lock_order: vec![
                ("roles".into(), vec!["roles".into()]),
                ("ingest".into(), vec!["ingest".into()]),
                ("writer".into(), vec!["write".into(), "writer".into()]),
                (
                    "stripe".into(),
                    vec!["stripe".into(), "stripes".into(), "stripe_for".into()],
                ),
            ],
            ambient_methods: vec!["lock".into(), "read".into(), "insert".into()],
            ..Config::default()
        }
    }

    fn run(src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("fixture.rs", "index", src);
        let files = vec![f];
        let g = callgraph::build(&cfg(), &files);
        let sums = callgraph::summarize(&g);
        let mut v = Vec::new();
        check_all(&cfg(), &files, &g, &sums, &mut v);
        v
    }

    #[test]
    fn inversion_fires() {
        let v = run(
            "fn bad(&self) {\n  let s = self.stripes[0].lock();\n  let w = self.write.lock();\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("`writer`"));
        assert!(v[0].msg.contains("holding `stripe`"));
    }

    #[test]
    fn documented_order_is_clean() {
        let v = run(
            "fn good(&self) {\n  let r = self.roles.read();\n  let w = self.write.lock();\n  let s = self.stripe_for(t).lock();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn scope_close_releases_the_guard() {
        let v = run(
            "fn ok(&self) {\n  {\n    let s = self.stripes[0].lock();\n  }\n  let w = self.write.lock();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let v = run(
            "fn ok(&self) {\n  let s = self.stripes[0].lock();\n  drop(s);\n  let w = self.write.lock();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let v = run(
            "fn ok(&self) {\n  self.stripes[0].lock().insert(k, v);\n  let w = self.write.lock();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unknown_receivers_are_ignored() {
        let v =
            run("fn f(&self) {\n  let g = self.mystery.lock();\n  let w = self.write.lock();\n}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn allowlisted_inversion_passes() {
        let v = run(
            "fn f(&self) {\n  let s = self.stripes[0].lock();\n  let w = self.write.lock(); // lint: allow(lock-ordering) — single-threaded init path\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn multiline_acquisition_chain_is_tracked() {
        let v = run(
            "fn bad(&self) {\n  let s = self.stripes[0]\n    .lock();\n  let w = self.write.lock();\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn cross_function_inversion_fires_with_chain() {
        let v = run(
            "fn top(&self) {\n  let s = self.stripes[0].lock();\n  self.mid();\n}\nfn mid(&self) {\n  self.leaf();\n}\nfn leaf(&self) {\n  let w = self.write.lock();\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("calling `mid` may acquire `writer`"));
        assert_eq!(v[0].chain.len(), 3);
        assert!(v[0].chain[0].contains("`top` holds `stripe` and calls `mid`"));
        assert!(v[0].chain[2].contains("`leaf` acquires `writer`"));
    }

    #[test]
    fn cross_function_in_order_call_is_clean() {
        let v = run(
            "fn top(&self) {\n  let r = self.roles.read();\n  self.leaf();\n}\nfn leaf(&self) {\n  let w = self.write.lock();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn allowlisted_call_site_suppresses_the_chain_diagnostic() {
        let v = run(
            "fn top(&self) {\n  let s = self.stripes[0].lock();\n  self.leaf(); // lint: allow(lock-ordering) — callee only touches its own stripe\n}\nfn leaf(&self) {\n  let w = self.write.lock();\n}\n",
        );
        assert!(v.is_empty());
    }
}
