//! Rule `lock-ordering`: function-local detection of nested lock
//! acquisitions checked against the documented global order (loaded from
//! `analyzer.toml`, outermost class first). Acquiring a lower-ranked
//! (outer) class while a guard of a higher-ranked (inner) class is live
//! is an inversion — two threads doing it in opposite orders deadlock.
//!
//! Heuristics, deliberately simple and biased toward *holding guards too
//! long* (false positives are reviewable; missed inversions are not):
//! - An acquisition is a `.lock()`, `.read()` or `.write()` call with
//!   empty parens; the receiver is the identifier before it (skipping one
//!   balanced call/index suffix, so `stripes[i].lock()` → `stripes` and
//!   `stripe_for(t).lock()` → `stripe_for`). Receivers not named in the
//!   config are ignored.
//! - A `let`-bound guard lives until its surrounding brace scope closes
//!   or an explicit `drop(name)` runs; an unbound guard (temporary) dies
//!   at end of line.

use crate::config::Config;
use crate::scan::SourceFile;
use crate::Violation;

pub const NAME: &str = "lock-ordering";

const METHODS: [&str; 3] = [".lock()", ".read()", ".write()"];

struct Guard {
    rank: usize,
    class: String,
    /// Brace depth at the acquisition point; popped when depth drops
    /// below it.
    depth: i32,
    /// Binding name, for `drop(name)` release. `None` for temporaries.
    name: Option<String>,
    /// Temporaries die at end of line.
    temp: bool,
}

pub fn check(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if cfg.lock_order.is_empty() {
        return;
    }
    let order: Vec<&str> = cfg.lock_order.iter().map(|(c, _)| c.as_str()).collect();
    let order_doc = order.join(" → ");
    for span in f.functions() {
        let mut depth = 0i32;
        let mut guards: Vec<Guard> = Vec::new();
        for li in span.body_open.line..=span.body_close.line {
            let code = &f.lines[li].code;
            let lo = if li == span.body_open.line {
                span.body_open.col
            } else {
                0
            };
            let hi = if li == span.body_close.line {
                span.body_close.col + 1
            } else {
                code.len()
            };
            let slice = &code[lo..hi];
            let bytes = slice.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        guards.retain(|g| g.depth <= depth);
                    }
                    b'd' if slice[i..].starts_with("drop(") && ident_boundary(bytes, i) => {
                        let inner: String = slice[i + 5..]
                            .chars()
                            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                            .collect();
                        if let Some(p) = guards
                            .iter()
                            .rposition(|g| g.name.as_deref() == Some(inner.as_str()))
                        {
                            guards.remove(p);
                        }
                    }
                    b'.' => {
                        if let Some(m) = METHODS.iter().find(|m| slice[i..].starts_with(**m)) {
                            if let Some((rank, class)) = classify(cfg, &slice[..i]) {
                                acquire(f, li, &order_doc, &guards, rank, &class, m, out);
                                guards.push(Guard {
                                    rank,
                                    class,
                                    depth,
                                    name: binding_name(&slice[..i]),
                                    temp: !is_scoped(&slice[..i]),
                                });
                            }
                            i += m.len();
                            continue;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            guards.retain(|g| !g.temp);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn acquire(
    f: &SourceFile,
    li: usize,
    order_doc: &str,
    guards: &[Guard],
    rank: usize,
    class: &str,
    method: &str,
    out: &mut Vec<Violation>,
) {
    let Some(held) = guards
        .iter()
        .filter(|g| g.rank > rank)
        .max_by_key(|g| g.rank)
    else {
        return;
    };
    if f.allowed(li, NAME) {
        return;
    }
    out.push(Violation {
        rule: NAME,
        path: f.rel_path.clone(),
        line: li + 1,
        msg: format!(
            "acquires `{class}` (via `{method}`) while holding `{}` — documented order is {order_doc}",
            held.class
        ),
    });
}

/// Maps the receiver identifier before a lock call to its configured
/// class `(rank, name)`.
fn classify(cfg: &Config, prefix: &str) -> Option<(usize, String)> {
    let recv = receiver(prefix)?;
    for (rank, (class, receivers)) in cfg.lock_order.iter().enumerate() {
        if receivers.iter().any(|r| r == &recv) {
            return Some((rank, class.clone()));
        }
    }
    None
}

/// The identifier ending `prefix`, skipping one trailing balanced `(...)`
/// or `[...]` group: `self.write` → `write`, `stripes[i]` → `stripes`,
/// `stripe_for(t)` → `stripe_for`.
fn receiver(prefix: &str) -> Option<String> {
    let b = prefix.as_bytes();
    let mut i = prefix.len();
    while i > 0 && (b[i - 1] == b')' || b[i - 1] == b']') {
        let close = b[i - 1];
        let open = if close == b')' { b'(' } else { b'[' };
        let mut bal = 0i32;
        while i > 0 {
            i -= 1;
            if b[i] == close {
                bal += 1;
            } else if b[i] == open {
                bal -= 1;
                if bal == 0 {
                    break;
                }
            }
        }
    }
    let end = i;
    while i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        i -= 1;
    }
    (i < end).then(|| prefix[i..end].to_string())
}

/// Binding name for `let <pat> = ….lock()`: the last identifier in the
/// pattern (`let g`, `let mut g`, `let Ok(g)` all yield `g`).
fn binding_name(before: &str) -> Option<String> {
    let let_at = find_word(before, "let")?;
    let rest = &before[let_at + 3..];
    let pat = rest.split('=').next().unwrap_or(rest);
    let pat = pat.split(':').next().unwrap_or(pat);
    pat.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .rfind(|w| !w.is_empty() && *w != "mut")
        .map(|s| s.to_string())
}

/// True when the guard outlives the line even without a binding: the
/// scrutinee of `match`/`if`/`while` lives for the whole block.
fn is_scoped(before: &str) -> bool {
    ["let", "match", "if", "while"]
        .iter()
        .any(|k| find_word(before, k).is_some())
}

fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let b = hay.as_bytes();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let at = from + p;
        let end = at + needle.len();
        let left = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let right = end == b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if left && right {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

fn ident_boundary(b: &[u8], at: usize) -> bool {
    at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            lock_order: vec![
                ("roles".into(), vec!["roles".into()]),
                ("ingest".into(), vec!["ingest".into()]),
                ("writer".into(), vec!["write".into(), "writer".into()]),
                (
                    "stripe".into(),
                    vec!["stripe".into(), "stripes".into(), "stripe_for".into()],
                ),
            ],
            ..Config::default()
        }
    }

    fn run(src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("fixture.rs", "index", src);
        let mut v = Vec::new();
        check(&cfg(), &f, &mut v);
        v
    }

    #[test]
    fn inversion_fires() {
        let v = run(
            "fn bad(&self) {\n  let s = self.stripes[0].lock();\n  let w = self.write.lock();\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("`writer`"));
        assert!(v[0].msg.contains("holding `stripe`"));
    }

    #[test]
    fn documented_order_is_clean() {
        let v = run(
            "fn good(&self) {\n  let r = self.roles.read();\n  let w = self.write.lock();\n  let s = self.stripe_for(t).lock();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn scope_close_releases_the_guard() {
        let v = run(
            "fn ok(&self) {\n  {\n    let s = self.stripes[0].lock();\n  }\n  let w = self.write.lock();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let v = run(
            "fn ok(&self) {\n  let s = self.stripes[0].lock();\n  drop(s);\n  let w = self.write.lock();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_end_of_line() {
        let v = run(
            "fn ok(&self) {\n  self.stripes[0].lock().insert(k, v);\n  let w = self.write.lock();\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unknown_receivers_are_ignored() {
        let v =
            run("fn f(&self) {\n  let g = self.mystery.lock();\n  let w = self.write.lock();\n}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn allowlisted_inversion_passes() {
        let v = run(
            "fn f(&self) {\n  let s = self.stripes[0].lock();\n  let w = self.write.lock(); // lint: allow(lock-ordering) — single-threaded init path\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn receiver_extraction_cases() {
        assert_eq!(receiver("self.write").as_deref(), Some("write"));
        assert_eq!(receiver("self.stripes[i + 1]").as_deref(), Some("stripes"));
        assert_eq!(
            receiver("self.stripe_for(t)").as_deref(),
            Some("stripe_for")
        );
        assert_eq!(receiver("  "), None);
    }
}
