//! Rule `wire-tags`: audits the hand-maintained wire protocol tag space
//! in `crates/wire/src/messages.rs`. Fails on:
//! - two tag consts in the same family (`REQ_*` / `RESP_*`) sharing a value;
//! - a `Request`/`Response` enum variant with no arm in `encode_into` or
//!   `decode` (a variant that encodes but can't decode — or vice versa —
//!   is a protocol break waiting for the first real deployment);
//! - a tag value missing from the reserved-tag table in `analyzer.toml`
//!   (new tags must be reserved) or reserved under a *different* const
//!   name (a removed tag's value must stay burned, never reassigned).

use crate::config::Config;
use crate::lexer::has_word;
use crate::scan::SourceFile;
use crate::Violation;
use std::collections::BTreeMap;

pub const NAME: &str = "wire-tags";

/// The audited file, relative to the repo root.
pub const TARGET: &str = "crates/wire/src/messages.rs";

struct Family<'a> {
    prefix: &'a str,
    enum_name: &'a str,
    reserved: &'a BTreeMap<u32, String>,
}

pub fn check(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if !f.rel_path.ends_with(TARGET) {
        return;
    }
    let families = [
        Family {
            prefix: "REQ_",
            enum_name: "Request",
            reserved: &cfg.reserved_request_tags,
        },
        Family {
            prefix: "RESP_",
            enum_name: "Response",
            reserved: &cfg.reserved_response_tags,
        },
    ];
    for fam in families {
        audit_consts(f, &fam, out);
        audit_arms(f, &fam, out);
    }
}

/// Parses `const <PREFIX><NAME>: u8 = <n>;` lines into (name, value, line).
fn tag_consts(f: &SourceFile, prefix: &str) -> Vec<(String, u32, usize)> {
    let mut found = Vec::new();
    for (idx, l) in f.lines.iter().enumerate() {
        if f.in_test[idx] {
            continue;
        }
        let code = l.code.trim();
        let Some(rest) = code
            .strip_prefix("pub const ")
            .or_else(|| code.strip_prefix("const "))
        else {
            continue;
        };
        if !rest.starts_with(prefix) {
            continue;
        }
        let Some((name, tail)) = rest.split_once(':') else {
            continue;
        };
        let Some((_, value)) = tail.split_once('=') else {
            continue;
        };
        if let Ok(v) = value.trim().trim_end_matches(';').trim().parse::<u32>() {
            found.push((name.trim().to_string(), v, idx));
        }
    }
    found
}

fn audit_consts(f: &SourceFile, fam: &Family<'_>, out: &mut Vec<Violation>) {
    let consts = tag_consts(f, fam.prefix);
    if consts.is_empty() {
        emit(
            f,
            0,
            out,
            format!("found no `{}*` tag consts — audit anchor lost", fam.prefix),
        );
        return;
    }
    let mut by_value: BTreeMap<u32, &str> = BTreeMap::new();
    for (name, value, idx) in &consts {
        if let Some(first) = by_value.insert(*value, name) {
            emit(
                f,
                *idx,
                out,
                format!("duplicate wire tag {value}: `{name}` collides with `{first}`"),
            );
        }
        match fam.reserved.get(value) {
            Some(owner) if owner == name => {}
            Some(owner) => emit(
                f,
                *idx,
                out,
                format!(
                    "tag {value} is reserved for `{owner}` but declared as `{name}` — \
                     removed tags stay burned; pick the next free value"
                ),
            ),
            None => emit(
                f,
                *idx,
                out,
                format!(
                    "tag {value} (`{name}`) is not in the [wire.reserved] table in \
                     analyzer.toml — reserve every shipped tag"
                ),
            ),
        }
    }
}

fn audit_arms(f: &SourceFile, fam: &Family<'_>, out: &mut Vec<Violation>) {
    let Some(variants) = enum_variants(f, fam.enum_name) else {
        emit(
            f,
            0,
            out,
            format!("could not locate `pub enum {}`", fam.enum_name),
        );
        return;
    };
    let Some((impl_start, impl_end)) = impl_block(f, fam.enum_name) else {
        emit(
            f,
            0,
            out,
            format!("could not locate `impl {}`", fam.enum_name),
        );
        return;
    };
    let fns = f.functions();
    for method in ["encode_into", "decode"] {
        let Some(span) = fns
            .iter()
            .find(|s| s.name == method && s.header >= impl_start && s.header <= impl_end)
        else {
            emit(
                f,
                impl_start,
                out,
                format!("could not locate `fn {method}` in `impl {}`", fam.enum_name),
            );
            continue;
        };
        for (variant, vline) in &variants {
            let qualified = format!("{}::{variant}", fam.enum_name);
            let selfed = format!("Self::{variant}");
            let present = (span.header..=span.body_close.line).any(|li| {
                let code = &f.lines[li].code;
                has_word(code, &qualified) || has_word(code, &selfed)
            });
            if !present && !f.allowed(*vline, NAME) {
                emit(
                    f,
                    *vline,
                    out,
                    format!(
                        "variant `{}::{variant}` has no arm in `{method}` — \
                         every variant must round-trip",
                        fam.enum_name
                    ),
                );
            }
        }
    }
}

/// Variant names of `pub enum <name>` with their line indices.
fn enum_variants(f: &SourceFile, name: &str) -> Option<Vec<(String, usize)>> {
    let decl = format!("enum {name}");
    let start = f
        .lines
        .iter()
        .position(|l| l.code.contains(&decl) && has_word(&l.code, name) && l.code.contains('{'))?;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    for (idx, l) in f.lines.iter().enumerate().skip(start) {
        let at_variant_depth = depth == 1;
        for c in l.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(variants);
                    }
                }
                _ => {}
            }
        }
        if idx == start || !at_variant_depth {
            continue;
        }
        let code = f.lines[idx].code.trim();
        if code.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            let v: String = code
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            variants.push((v, idx));
        }
    }
    Some(variants)
}

/// Line span of `impl <name> {` … `}` (inherent impl, not trait impls).
fn impl_block(f: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let decl = format!("impl {name}");
    let start = f.lines.iter().position(|l| {
        let code = l.code.trim();
        // The boundary check keeps `impl RequestRef` from matching.
        code.starts_with(&decl)
            && !code
                .as_bytes()
                .get(decl.len())
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
            && !code.contains(" for ")
            && code.ends_with('{')
    })?;
    let mut depth = 0i32;
    for (idx, l) in f.lines.iter().enumerate().skip(start) {
        for c in l.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((start, idx));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

fn emit(f: &SourceFile, idx: usize, out: &mut Vec<Violation>, msg: String) {
    out.push(Violation {
        rule: NAME,
        path: f.rel_path.clone(),
        line: idx + 1,
        msg,
        chain: Vec::new(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = r#"
pub enum Request {
    Ping,
    Insert {
        chunk: u32,
    },
}

const REQ_PING: u8 = 1;
const REQ_INSERT: u8 = 2;

impl Request {
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Insert { chunk } => out.push(REQ_INSERT),
        }
    }
    pub fn decode(buf: &[u8]) -> Result<Self, ()> {
        Ok(match buf[0] {
            REQ_PING => Request::Ping,
            REQ_INSERT => Request::Insert { chunk: 0 },
            _ => return Err(()),
        })
    }
}

pub enum Response {
    Ok,
}
const RESP_OK: u8 = 1;
impl Response {
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.push(RESP_OK),
        }
    }
    pub fn decode(buf: &[u8]) -> Result<Self, ()> {
        Ok(Response::Ok)
    }
}
"#;

    fn cfg(req: &[(u32, &str)], resp: &[(u32, &str)]) -> Config {
        Config {
            reserved_request_tags: req.iter().map(|(v, n)| (*v, n.to_string())).collect(),
            reserved_response_tags: resp.iter().map(|(v, n)| (*v, n.to_string())).collect(),
            ..Config::default()
        }
    }

    fn run(cfg: &Config, src: &str) -> Vec<Violation> {
        let f = SourceFile::parse(TARGET, "wire", src);
        let mut v = Vec::new();
        check(cfg, &f, &mut v);
        v
    }

    #[test]
    fn clean_fixture_passes() {
        let c = cfg(&[(1, "REQ_PING"), (2, "REQ_INSERT")], &[(1, "RESP_OK")]);
        let v = run(&c, FIXTURE);
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn duplicate_tag_fires() {
        let c = cfg(&[(1, "REQ_PING"), (2, "REQ_INSERT")], &[(1, "RESP_OK")]);
        let dup = FIXTURE.replace("const REQ_INSERT: u8 = 2;", "const REQ_INSERT: u8 = 1;");
        let v = run(&c, &dup);
        assert!(v.iter().any(|x| x.msg.contains("duplicate wire tag 1")));
    }

    #[test]
    fn unreserved_tag_fires() {
        let c = cfg(&[(1, "REQ_PING")], &[(1, "RESP_OK")]);
        let v = run(&c, FIXTURE);
        assert!(v
            .iter()
            .any(|x| x.msg.contains("tag 2 (`REQ_INSERT`) is not in")));
    }

    #[test]
    fn reused_tag_fires() {
        let c = cfg(&[(1, "REQ_PING"), (2, "REQ_RETIRED")], &[(1, "RESP_OK")]);
        let v = run(&c, FIXTURE);
        assert!(v
            .iter()
            .any(|x| x.msg.contains("reserved for `REQ_RETIRED`")));
    }

    #[test]
    fn missing_decode_arm_fires() {
        let c = cfg(&[(1, "REQ_PING"), (2, "REQ_INSERT")], &[(1, "RESP_OK")]);
        let broken = FIXTURE.replace(
            "            REQ_INSERT => Request::Insert { chunk: 0 },\n",
            "",
        );
        let v = run(&c, &broken);
        assert!(
            v.iter()
                .any(|x| x.msg.contains("`Request::Insert` has no arm in `decode`")),
            "got: {v:?}"
        );
    }

    #[test]
    fn missing_encode_arm_fires() {
        let c = cfg(&[(1, "REQ_PING"), (2, "REQ_INSERT")], &[(1, "RESP_OK")]);
        let broken = FIXTURE.replace(
            "            Request::Insert { chunk } => out.push(REQ_INSERT),\n",
            "",
        );
        let v = run(&c, &broken);
        assert!(v.iter().any(|x| x
            .msg
            .contains("`Request::Insert` has no arm in `encode_into`")));
    }

    #[test]
    fn only_audits_the_wire_messages_file() {
        let c = cfg(&[], &[]);
        let f = SourceFile::parse("crates/server/src/engine.rs", "server", "fn f() {}");
        let mut v = Vec::new();
        check(&c, &f, &mut v);
        assert!(v.is_empty());
    }
}
