//! Rule `blocking-under-lock`: functions must not perform — or call into
//! anything that transitively performs — a blocking operation while
//! holding a lock class declared in `[blocking] classes`. Blocking
//! operations are KV-store I/O (`kv.get` / `kv.put` / `kv.scan_prefix` /
//! `kv.delete`, matched by configured receiver and method names), socket
//! reads/writes, and sleeps/waits (`[blocking] calls`).
//!
//! The point: a registry or stripe mutex guards hot-path shared state;
//! holding it across disk or network latency turns one slow I/O into a
//! pile-up of every thread behind that lock. The deliberate exception —
//! the hydration path replaying chunks from the store under its
//! single-flight gate — is exactly what the reasoned allowlist is for.

use std::collections::HashSet;

use crate::callgraph::{Graph, Summary};
use crate::config::Config;
use crate::scan::SourceFile;
use crate::Violation;

pub const NAME: &str = "blocking-under-lock";

pub fn check_all(
    cfg: &Config,
    files: &[SourceFile],
    g: &Graph,
    sums: &[Summary],
    out: &mut Vec<Violation>,
) {
    if cfg.blocking_classes.is_empty() {
        return;
    }
    let sensitive = |class: &str| cfg.blocking_classes.iter().any(|c| c == class);
    for (di, d) in g.defs.iter().enumerate() {
        let f = &files[d.file];
        // Direct blocking operations under a sensitive guard.
        for b in &d.facts.blocks {
            let Some(held) = b
                .held
                .iter()
                .filter(|h| sensitive(&h.class))
                .max_by_key(|h| h.rank)
            else {
                continue;
            };
            if f.allowed(b.line, NAME) {
                continue;
            }
            out.push(Violation {
                rule: NAME,
                path: f.rel_path.clone(),
                line: b.line + 1,
                msg: format!(
                    "blocking `{}` while holding `{}` — `{}` must not be held across blocking ops",
                    b.what, held.class, held.class
                ),
                chain: Vec::new(),
            });
        }
        // Calls under a sensitive guard into code that may block.
        let mut seen: HashSet<usize> = HashSet::new();
        for (ci, callees) in g.edges[di].iter().enumerate() {
            let call = &d.facts.calls[ci];
            let Some(held) = call
                .held
                .iter()
                .filter(|h| sensitive(&h.class))
                .max_by_key(|h| h.rank)
            else {
                continue;
            };
            for &c in callees {
                let Some(info) = &sums[c].may_block else {
                    continue;
                };
                if f.allowed(call.line, NAME) {
                    continue;
                }
                if !seen.insert(call.line) {
                    continue;
                }
                let mut chain = vec![format!(
                    "`{}` holds `{}` and calls `{}` ({}:{})",
                    d.name,
                    held.class,
                    call.name,
                    d.path,
                    call.line + 1
                )];
                chain.extend(info.chain.iter().cloned());
                out.push(Violation {
                    rule: NAME,
                    path: f.rel_path.clone(),
                    line: call.line + 1,
                    msg: format!(
                        "calling `{}` may block on `{}` while holding `{}`",
                        call.name, info.what, held.class
                    ),
                    chain,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;

    fn cfg() -> Config {
        Config {
            lock_order: vec![
                ("registry".into(), vec!["registry".into()]),
                ("stripe".into(), vec!["stripe".into(), "stripes".into()]),
            ],
            ambient_methods: vec!["lock".into()],
            blocking_classes: vec!["registry".into(), "stripe".into()],
            blocking_store_receivers: vec!["kv".into()],
            blocking_store_methods: vec!["get".into(), "put".into(), "scan_prefix".into()],
            blocking_calls: vec!["sleep".into(), "read_exact".into()],
            ..Config::default()
        }
    }

    fn run(src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("fixture.rs", "server", src);
        let files = vec![f];
        let g = callgraph::build(&cfg(), &files);
        let sums = callgraph::summarize(&g);
        let mut v = Vec::new();
        check_all(&cfg(), &files, &g, &sums, &mut v);
        v
    }

    #[test]
    fn store_put_under_registry_fires() {
        let v = run("fn bad(&self) {\n  let r = self.registry.lock();\n  self.kv.put(k, v);\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("`kv.put`"));
        assert!(v[0].msg.contains("holding `registry`"));
    }

    #[test]
    fn store_put_outside_the_lock_is_clean() {
        let v = run(
            "fn ok(&self) {\n  {\n    let r = self.registry.lock();\n  }\n  self.kv.put(k, v);\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn transitive_block_through_a_call_fires_with_chain() {
        let v = run(
            "fn top(&self) {\n  let r = self.registry.lock();\n  self.mid();\n}\nfn mid(&self) {\n  self.persist();\n}\nfn persist(&self) {\n  self.kv.put(k, v);\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(v[0].msg.contains("may block on `kv.put`"));
        assert_eq!(v[0].chain.len(), 3);
        assert!(v[0].chain[2].contains("`persist` blocks on `kv.put`"));
    }

    #[test]
    fn sleep_under_stripe_fires() {
        let v = run("fn bad(&self) {\n  let s = self.stripes[0].lock();\n  thread::sleep(d);\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("`sleep`"));
    }

    #[test]
    fn blocking_under_an_unlisted_class_is_clean() {
        let v = run("fn ok(&self) {\n  self.kv.get(k);\n}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn allowlisted_replay_passes() {
        let v = run(
            "fn hydrate(&self) {\n  let r = self.registry.lock();\n  self.kv.scan_prefix(p); // lint: allow(blocking-under-lock) — deliberate store replay under the gate\n}\n",
        );
        assert!(v.is_empty());
    }
}
