//! Rule `atomics-ordering`: every `Ordering::*` token in the scoped
//! crates must match the declared role of its atomic (from
//! `[atomics.role.*]` in `analyzer.toml`):
//!
//! - `counter` — pure statistic; `Relaxed` is expected and anything short
//!   of `SeqCst` is tolerated.
//! - `publish` — publication point (seqlock generation, length
//!   watermark): loads `Acquire`, stores `Release`, RMWs `AcqRel` (an
//!   RMW failure ordering may be `Acquire`). A `Relaxed` load paired
//!   with a `Release` store is the silent bug class this rule exists
//!   for: the load can observe the new value without the writes it
//!   publishes.
//! - `gate` — boolean latch (shutdown, single-flight): loads `Acquire`,
//!   stores `Release`, RMWs `Acquire` or `AcqRel`.
//!
//! `SeqCst` is never accepted silently — it is either hiding a missing
//! pair or taxing the hot path; both deserve a written reason. An atomic
//! receiver with no declared role is a violation too, so new atomics
//! can't dodge the policy.

use std::collections::HashSet;

use crate::config::{AtomicRole, Config};
use crate::heldset;
use crate::scan::SourceFile;
use crate::Violation;

pub const NAME: &str = "atomics-ordering";

/// Methods on std atomics that take `Ordering` arguments.
const OPS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

#[derive(Clone, Copy, PartialEq)]
enum OpKind {
    Load,
    Store,
    Rmw,
}

fn op_kind(op: &str) -> OpKind {
    match op {
        "load" => OpKind::Load,
        "store" => OpKind::Store,
        _ => OpKind::Rmw,
    }
}

pub fn check(cfg: &Config, f: &SourceFile, out: &mut Vec<Violation>) {
    if !cfg.atomics_crates.iter().any(|c| c == &f.crate_name) {
        return;
    }
    let mut done: HashSet<usize> = HashSet::new();
    for li in 0..f.lines.len() {
        if f.in_test[li] || !f.lines[li].code.contains("Ordering::") {
            continue;
        }
        let range = f.stmt_lines(li);
        if !done.insert(range.start) {
            continue;
        }
        // Join the statement so a multi-line atomic call still resolves
        // its receiver and op.
        let mut text = String::new();
        let mut starts: Vec<(usize, usize)> = Vec::new();
        for gi in range.clone() {
            starts.push((text.len(), gi));
            text.push_str(&f.lines[gi].code);
            text.push('\n');
        }
        let line_of = |pos: usize| -> usize {
            match starts.binary_search_by_key(&pos, |&(o, _)| o) {
                Ok(k) => starts[k].1,
                Err(k) => starts[k - 1].1,
            }
        };
        let mut from = 0;
        while let Some(p) = text[from..].find("Ordering::") {
            let at = from + p;
            let ord: String = text[at + "Ordering::".len()..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            from = at + "Ordering::".len();
            if !matches!(
                ord.as_str(),
                "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
            ) {
                continue;
            }
            let line = line_of(at);
            if f.in_test[line] || f.allowed(line, NAME) {
                continue;
            }
            check_site(cfg, f, &text, at, &ord, line, out);
        }
    }
}

/// Validates one `Ordering::<ord>` occurrence at offset `at` in the
/// joined statement `text`.
fn check_site(
    cfg: &Config,
    f: &SourceFile,
    text: &str,
    at: usize,
    ord: &str,
    line: usize,
    out: &mut Vec<Violation>,
) {
    let mut push = |msg: String| {
        out.push(Violation {
            rule: NAME,
            path: f.rel_path.clone(),
            line: line + 1,
            msg,
            chain: Vec::new(),
        });
    };
    // Innermost open paren containing the token = the call it's an
    // argument of.
    let mut stack: Vec<usize> = Vec::new();
    for (i, c) in text.char_indices() {
        if i >= at {
            break;
        }
        match c {
            '(' => stack.push(i),
            ')' => {
                stack.pop();
            }
            _ => {}
        }
    }
    let Some(&open) = stack.last() else {
        push(format!(
            "Ordering::{ord} outside any call — atomics policy can't classify it"
        ));
        return;
    };
    let b = text.as_bytes();
    let mut s = open;
    while s > 0 && (b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_') {
        s -= 1;
    }
    let op = &text[s..open];
    if !OPS.contains(&op) {
        push(format!(
            "Ordering::{ord} passed to `{op}(…)`, not a recognized atomic op — wrap-free atomics only, or allowlist"
        ));
        return;
    }
    let recv = (s > 0 && b[s - 1] == b'.')
        .then(|| heldset::receiver(text[..s - 1].trim_end()))
        .flatten();
    let Some(recv) = recv else {
        push(format!(
            "cannot determine the atomic receiver of `{op}` — name the atomic so its role applies"
        ));
        return;
    };
    let Some(role) = cfg.atomics_roles.get(&recv) else {
        push(format!(
            "atomic `{recv}` has no declared role — add it to [atomics.role.counter|publish|gate] in analyzer.toml"
        ));
        return;
    };
    if ord == "SeqCst" {
        push(format!(
            "SeqCst on {} atomic `{recv}` — either weaken to the role's orderings or allowlist with the invariant that needs it",
            role.name()
        ));
        return;
    }
    let kind = op_kind(op);
    let ok = match role {
        AtomicRole::Counter => true,
        AtomicRole::Publish => match kind {
            OpKind::Load => ord == "Acquire",
            OpKind::Store => ord == "Release",
            OpKind::Rmw => ord == "AcqRel" || ord == "Acquire",
        },
        AtomicRole::Gate => match kind {
            OpKind::Load => ord == "Acquire",
            OpKind::Store => ord == "Release",
            OpKind::Rmw => ord == "AcqRel" || ord == "Acquire",
        },
    };
    if !ok {
        let discipline = match role {
            AtomicRole::Counter => unreachable!(),
            AtomicRole::Publish => "loads Acquire, stores Release, RMWs AcqRel",
            AtomicRole::Gate => "loads Acquire, stores Release, RMWs Acquire/AcqRel",
        };
        push(format!(
            "`{recv}` is a {} atomic ({discipline}) — found `{op}` with Ordering::{ord}",
            role.name()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        let mut c = Config {
            atomics_crates: vec!["index".into()],
            ..Config::default()
        };
        c.atomics_roles.insert("hits".into(), AtomicRole::Counter);
        c.atomics_roles
            .insert("cache_gen".into(), AtomicRole::Publish);
        c.atomics_roles
            .insert("rebuilding".into(), AtomicRole::Gate);
        c
    }

    fn run(src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("fixture.rs", "index", src);
        let mut v = Vec::new();
        check(&cfg(), &f, &mut v);
        v
    }

    #[test]
    fn relaxed_counter_is_clean() {
        assert!(run("fn f(&self) {\n  self.hits.fetch_add(1, Ordering::Relaxed);\n}\n").is_empty());
    }

    #[test]
    fn relaxed_load_of_publish_atomic_fires() {
        let v = run("fn f(&self) {\n  let g = self.cache_gen.load(Ordering::Relaxed);\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("publish"));
        assert!(v[0].msg.contains("Ordering::Relaxed"));
    }

    #[test]
    fn acquire_release_publish_pair_is_clean() {
        let v = run(
            "fn f(&self) {\n  let g = self.cache_gen.load(Ordering::Acquire);\n  self.cache_gen.store(g + 1, Ordering::Release);\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn seqcst_always_fires() {
        let v = run("fn f(&self) {\n  self.hits.fetch_add(1, Ordering::SeqCst);\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("SeqCst"));
    }

    #[test]
    fn undeclared_atomic_fires() {
        let v = run("fn f(&self) {\n  self.mystery.load(Ordering::Relaxed);\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("no declared role"));
    }

    #[test]
    fn gate_swap_acquire_is_clean() {
        assert!(
            run("fn f(&self) {\n  self.rebuilding.swap(true, Ordering::Acquire);\n}\n").is_empty()
        );
    }

    #[test]
    fn multiline_atomic_call_resolves_receiver() {
        let v = run("fn f(&self) {\n  self.cache_gen\n    .store(1, Ordering::Relaxed);\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("`cache_gen`"));
    }

    #[test]
    fn allowlisted_seqcst_passes() {
        let v = run(
            "fn f(&self) {\n  self.hits.fetch_add(1, Ordering::SeqCst); // lint: allow(atomics-ordering) — cross-variable fence documented in tree.rs\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_skipped() {
        let f = SourceFile::parse(
            "fixture.rs",
            "bench",
            "fn f(&self) {\n  x.load(Ordering::SeqCst);\n}\n",
        );
        let mut v = Vec::new();
        check(&cfg(), &f, &mut v);
        assert!(v.is_empty());
    }
}
