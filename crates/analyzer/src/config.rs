//! Loader for `analyzer.toml` — the checked-in policy the rules run
//! against (lock order, hot-path crate list, reserved wire tags).
//!
//! The file is a deliberately tiny TOML subset so the analyzer stays
//! dependency-free: `[dotted.section]` headers, `key = "string"`,
//! `key = ["a", "b"]`, integer keys for the reserved-tag tables, and `#`
//! comments. Anything outside that subset is a hard error — the config is
//! part of the gate, so a silently ignored line would be a silently
//! disabled check.

use std::collections::BTreeMap;

/// Parsed analyzer policy.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Lock classes in acquisition order (outermost first). Each entry is
    /// `(class name, receiver identifiers that acquire it)`.
    pub lock_order: Vec<(String, Vec<String>)>,
    /// Crate names whose non-test code must be panic-free.
    pub panic_free_crates: Vec<String>,
    /// Reserved request tags: tag value → owning const name.
    pub reserved_request_tags: BTreeMap<u32, String>,
    /// Reserved response tags: tag value → owning const name.
    pub reserved_response_tags: BTreeMap<u32, String>,
}

/// A config-file syntax or consistency error.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analyzer.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError(msg.into()))
}

/// Strips surrounding quotes from a TOML string value.
fn unquote(v: &str, line_no: usize) -> Result<String, ConfigError> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        err(format!(
            "line {line_no}: expected a quoted string, got `{v}`"
        ))
    }
}

/// Parses `["a", "b"]` into its elements.
fn parse_list(v: &str, line_no: usize) -> Result<Vec<String>, ConfigError> {
    let v = v.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return err(format!("line {line_no}: expected a [list]"));
    }
    let inner = v[1..v.len() - 1].trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| unquote(s, line_no))
        .collect()
}

/// Parses the config text.
pub fn parse(src: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = String::new();
    // Accumulates [locks.class.<name>] receiver lists until the order list
    // stitches them together.
    let mut classes: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            // `#` only starts a comment outside strings; our subset never
            // puts `#` inside one, so a simple cut is exact.
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if !line.ends_with(']') {
                return err(format!("line {line_no}: unterminated section header"));
            }
            section = line[1..line.len() - 1].trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(format!("line {line_no}: expected `key = value`"));
        };
        let key = key.trim();
        let value = value.trim();
        match section.as_str() {
            "locks" if key == "order" => order = parse_list(value, line_no)?,
            s if s.starts_with("locks.class.") => {
                let class = s["locks.class.".len()..].to_string();
                if key != "receivers" {
                    return err(format!("line {line_no}: unknown lock-class key `{key}`"));
                }
                classes.insert(class, parse_list(value, line_no)?);
            }
            "panic_freedom" if key == "crates" => {
                cfg.panic_free_crates = parse_list(value, line_no)?;
            }
            "wire.reserved.request" | "wire.reserved.response" => {
                let tag: u32 = key.parse().map_err(|_| {
                    ConfigError(format!("line {line_no}: tag `{key}` not a number"))
                })?;
                let name = unquote(value, line_no)?;
                let table = if section == "wire.reserved.request" {
                    &mut cfg.reserved_request_tags
                } else {
                    &mut cfg.reserved_response_tags
                };
                if let Some(prev) = table.insert(tag, name) {
                    return err(format!(
                        "line {line_no}: tag {key} reserved twice (first for {prev})"
                    ));
                }
            }
            _ => {
                return err(format!(
                    "line {line_no}: unknown entry `{key}` in section `[{section}]`"
                ));
            }
        }
    }
    for class in order {
        let Some(receivers) = classes.remove(&class) else {
            return err(format!(
                "lock order names class `{class}` but [locks.class.{class}] is missing"
            ));
        };
        cfg.lock_order.push((class, receivers));
    }
    if let Some(orphan) = classes.keys().next() {
        return err(format!(
            "[locks.class.{orphan}] is not listed in the lock order"
        ));
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[locks]
order = ["roles", "ingest"]

[locks.class.roles]
receivers = ["roles"]

[locks.class.ingest]
receivers = ["ingest", "ingest_for"]

[panic_freedom]
crates = ["wire", "store"]

[wire.reserved.request]
1 = "REQ_CREATE"
25 = "REQ_TRACED"

[wire.reserved.response]
1 = "RESP_OK"
"#;

    #[test]
    fn parses_the_full_shape() {
        let cfg = parse(SAMPLE).unwrap();
        assert_eq!(
            cfg.lock_order,
            vec![
                ("roles".into(), vec!["roles".into()]),
                ("ingest".into(), vec!["ingest".into(), "ingest_for".into()]),
            ]
        );
        assert_eq!(cfg.panic_free_crates, vec!["wire", "store"]);
        assert_eq!(cfg.reserved_request_tags[&25], "REQ_TRACED");
        assert_eq!(cfg.reserved_response_tags[&1], "RESP_OK");
    }

    #[test]
    fn unknown_keys_are_hard_errors() {
        assert!(parse("[locks]\nordr = [\"a\"]").is_err());
        assert!(parse("[mystery]\nx = \"y\"").is_err());
    }

    #[test]
    fn order_and_classes_must_agree() {
        let missing = "[locks]\norder = [\"a\"]";
        assert!(parse(missing).is_err());
        let orphan = "[locks.class.b]\nreceivers = [\"b\"]";
        assert!(parse(orphan).is_err());
    }

    #[test]
    fn duplicate_reserved_tags_rejected() {
        let dup = "[wire.reserved.request]\n1 = \"A\"\n1 = \"B\"";
        assert!(parse(dup).is_err());
    }
}
