//! Loader for `analyzer.toml` — the checked-in policy the rules run
//! against (lock order, hot-path crate list, reserved wire tags).
//!
//! The file is a deliberately tiny TOML subset so the analyzer stays
//! dependency-free: `[dotted.section]` headers, `key = "string"`,
//! `key = ["a", "b"]`, integer keys for the reserved-tag tables, and `#`
//! comments. Anything outside that subset is a hard error — the config is
//! part of the gate, so a silently ignored line would be a silently
//! disabled check.

use std::collections::BTreeMap;

/// Parsed analyzer policy.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Lock classes in acquisition order (outermost first). Each entry is
    /// `(class name, receiver identifiers that acquire it)`.
    pub lock_order: Vec<(String, Vec<String>)>,
    /// Crate names whose non-test code must be panic-free.
    pub panic_free_crates: Vec<String>,
    /// Reserved request tags: tag value → owning const name.
    pub reserved_request_tags: BTreeMap<u32, String>,
    /// Reserved response tags: tag value → owning const name.
    pub reserved_response_tags: BTreeMap<u32, String>,
    /// Method/function names too generic to resolve as call-graph edges
    /// (std container and iterator idiom: `get`, `insert`, `lock`, …).
    /// Calls to these names never create edges; the interprocedural rules
    /// catch the underlying effects lexically instead.
    pub ambient_methods: Vec<String>,
    /// Crates left out of the call graph entirely (perf fixtures whose
    /// same-name defs would pollute name-based resolution).
    pub callgraph_exclude: Vec<String>,
    /// Lock classes that must not be held across blocking operations.
    pub blocking_classes: Vec<String>,
    /// Receiver identifiers that denote the KV store.
    pub blocking_store_receivers: Vec<String>,
    /// Store methods that hit disk (`kv.get(...)` etc.).
    pub blocking_store_methods: Vec<String>,
    /// Free/method call names that block regardless of receiver
    /// (socket reads, `thread::sleep`, condvar waits).
    pub blocking_calls: Vec<String>,
    /// Crates whose non-test atomics must be declared in a role table.
    pub atomics_crates: Vec<String>,
    /// Atomic receiver name → role (`counter`, `publish`, `gate`).
    pub atomics_roles: BTreeMap<String, AtomicRole>,
}

/// Declared memory-ordering discipline for one atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicRole {
    /// Pure statistic: every access may be `Relaxed` (and nothing stronger
    /// is required, though Acquire/Release are tolerated on a counter that
    /// doubles as a drain signal — only `SeqCst` is rejected).
    Counter,
    /// Publication (seqlock generation, length watermark): loads must be
    /// `Acquire`, stores `Release`, RMWs `AcqRel`.
    Publish,
    /// Boolean latch (`rebuilding`, shutdown flags): loads `Acquire`,
    /// stores `Release`, RMWs `Acquire` or `AcqRel`.
    Gate,
}

impl AtomicRole {
    pub fn name(self) -> &'static str {
        match self {
            AtomicRole::Counter => "counter",
            AtomicRole::Publish => "publish",
            AtomicRole::Gate => "gate",
        }
    }
}

/// A config-file syntax or consistency error.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analyzer.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError(msg.into()))
}

/// Strips surrounding quotes from a TOML string value.
fn unquote(v: &str, line_no: usize) -> Result<String, ConfigError> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        err(format!(
            "line {line_no}: expected a quoted string, got `{v}`"
        ))
    }
}

/// Parses `["a", "b"]` into its elements.
fn parse_list(v: &str, line_no: usize) -> Result<Vec<String>, ConfigError> {
    let v = v.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return err(format!("line {line_no}: expected a [list]"));
    }
    let inner = v[1..v.len() - 1].trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| unquote(s, line_no))
        .collect()
}

/// Parses the config text.
pub fn parse(src: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = String::new();
    // Accumulates [locks.class.<name>] receiver lists until the order list
    // stitches them together.
    let mut classes: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let strip = |raw: &str| -> String {
        // `#` only starts a comment outside strings; our subset never
        // puts `#` inside one, so a simple cut is exact.
        match raw.find('#') {
            Some(p) => raw[..p].trim().to_string(),
            None => raw.trim().to_string(),
        }
    };
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut idx = 0usize;
    while idx < raw_lines.len() {
        let line_no = idx + 1;
        let mut line = strip(raw_lines[idx]);
        idx += 1;
        if line.is_empty() {
            continue;
        }
        // A list may span lines: keep consuming until brackets balance.
        if line.contains('[')
            && line.contains('=')
            && line.matches('[').count() > line.matches(']').count()
        {
            while idx < raw_lines.len() && line.matches('[').count() > line.matches(']').count() {
                line.push(' ');
                line.push_str(&strip(raw_lines[idx]));
                idx += 1;
            }
        }
        let line = line.as_str();
        if line.starts_with('[') {
            if !line.ends_with(']') {
                return err(format!("line {line_no}: unterminated section header"));
            }
            section = line[1..line.len() - 1].trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(format!("line {line_no}: expected `key = value`"));
        };
        let key = key.trim();
        let value = value.trim();
        match section.as_str() {
            "locks" if key == "order" => order = parse_list(value, line_no)?,
            s if s.starts_with("locks.class.") => {
                let class = s["locks.class.".len()..].to_string();
                if key != "receivers" {
                    return err(format!("line {line_no}: unknown lock-class key `{key}`"));
                }
                classes.insert(class, parse_list(value, line_no)?);
            }
            "panic_freedom" if key == "crates" => {
                cfg.panic_free_crates = parse_list(value, line_no)?;
            }
            "callgraph" if key == "ambient_methods" => {
                cfg.ambient_methods = parse_list(value, line_no)?;
            }
            "callgraph" if key == "exclude_crates" => {
                cfg.callgraph_exclude = parse_list(value, line_no)?;
            }
            "blocking" => match key {
                "classes" => cfg.blocking_classes = parse_list(value, line_no)?,
                "store_receivers" => cfg.blocking_store_receivers = parse_list(value, line_no)?,
                "store_methods" => cfg.blocking_store_methods = parse_list(value, line_no)?,
                "calls" => cfg.blocking_calls = parse_list(value, line_no)?,
                _ => return err(format!("line {line_no}: unknown [blocking] key `{key}`")),
            },
            "atomics" if key == "crates" => {
                cfg.atomics_crates = parse_list(value, line_no)?;
            }
            s if s.starts_with("atomics.role.") => {
                let role = match &s["atomics.role.".len()..] {
                    "counter" => AtomicRole::Counter,
                    "publish" => AtomicRole::Publish,
                    "gate" => AtomicRole::Gate,
                    other => {
                        return err(format!("line {line_no}: unknown atomic role `{other}`"));
                    }
                };
                if key != "receivers" {
                    return err(format!("line {line_no}: unknown atomic-role key `{key}`"));
                }
                for recv in parse_list(value, line_no)? {
                    if let Some(prev) = cfg.atomics_roles.insert(recv.clone(), role) {
                        return err(format!(
                            "line {line_no}: atomic `{recv}` declared twice \
                             (first as {})",
                            prev.name()
                        ));
                    }
                }
            }
            "wire.reserved.request" | "wire.reserved.response" => {
                let tag: u32 = key.parse().map_err(|_| {
                    ConfigError(format!("line {line_no}: tag `{key}` not a number"))
                })?;
                let name = unquote(value, line_no)?;
                let table = if section == "wire.reserved.request" {
                    &mut cfg.reserved_request_tags
                } else {
                    &mut cfg.reserved_response_tags
                };
                if let Some(prev) = table.insert(tag, name) {
                    return err(format!(
                        "line {line_no}: tag {key} reserved twice (first for {prev})"
                    ));
                }
            }
            _ => {
                return err(format!(
                    "line {line_no}: unknown entry `{key}` in section `[{section}]`"
                ));
            }
        }
    }
    for class in order {
        let Some(receivers) = classes.remove(&class) else {
            return err(format!(
                "lock order names class `{class}` but [locks.class.{class}] is missing"
            ));
        };
        cfg.lock_order.push((class, receivers));
    }
    if let Some(orphan) = classes.keys().next() {
        return err(format!(
            "[locks.class.{orphan}] is not listed in the lock order"
        ));
    }
    for class in &cfg.blocking_classes {
        if !cfg.lock_order.iter().any(|(c, _)| c == class) {
            return err(format!(
                "[blocking] names class `{class}` but it is not in the lock order"
            ));
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[locks]
order = ["roles", "ingest"]

[locks.class.roles]
receivers = ["roles"]

[locks.class.ingest]
receivers = ["ingest", "ingest_for"]

[panic_freedom]
crates = ["wire", "store"]

[wire.reserved.request]
1 = "REQ_CREATE"
25 = "REQ_TRACED"

[wire.reserved.response]
1 = "RESP_OK"
"#;

    #[test]
    fn parses_the_full_shape() {
        let cfg = parse(SAMPLE).unwrap();
        assert_eq!(
            cfg.lock_order,
            vec![
                ("roles".into(), vec!["roles".into()]),
                ("ingest".into(), vec!["ingest".into(), "ingest_for".into()]),
            ]
        );
        assert_eq!(cfg.panic_free_crates, vec!["wire", "store"]);
        assert_eq!(cfg.reserved_request_tags[&25], "REQ_TRACED");
        assert_eq!(cfg.reserved_response_tags[&1], "RESP_OK");
    }

    #[test]
    fn unknown_keys_are_hard_errors() {
        assert!(parse("[locks]\nordr = [\"a\"]").is_err());
        assert!(parse("[mystery]\nx = \"y\"").is_err());
    }

    #[test]
    fn order_and_classes_must_agree() {
        let missing = "[locks]\norder = [\"a\"]";
        assert!(parse(missing).is_err());
        let orphan = "[locks.class.b]\nreceivers = [\"b\"]";
        assert!(parse(orphan).is_err());
    }

    #[test]
    fn duplicate_reserved_tags_rejected() {
        let dup = "[wire.reserved.request]\n1 = \"A\"\n1 = \"B\"";
        assert!(parse(dup).is_err());
    }

    const CONCURRENCY: &str = r#"
[locks]
order = ["registry", "stripe"]

[locks.class.registry]
receivers = ["registry"]

[locks.class.stripe]
receivers = ["stripe"]

[callgraph]
ambient_methods = ["lock", "insert"]

[blocking]
classes = ["registry", "stripe"]
store_receivers = ["kv"]
store_methods = ["get", "put"]
calls = ["sleep"]

[atomics]
crates = ["index"]

[atomics.role.counter]
receivers = ["gets", "puts"]

[atomics.role.publish]
receivers = ["cache_gen"]

[atomics.role.gate]
receivers = ["rebuilding"]
"#;

    #[test]
    fn parses_concurrency_sections() {
        let cfg = parse(CONCURRENCY).unwrap();
        assert_eq!(cfg.ambient_methods, vec!["lock", "insert"]);
        assert_eq!(cfg.blocking_classes, vec!["registry", "stripe"]);
        assert_eq!(cfg.blocking_store_receivers, vec!["kv"]);
        assert_eq!(cfg.blocking_store_methods, vec!["get", "put"]);
        assert_eq!(cfg.blocking_calls, vec!["sleep"]);
        assert_eq!(cfg.atomics_crates, vec!["index"]);
        assert_eq!(cfg.atomics_roles["gets"], AtomicRole::Counter);
        assert_eq!(cfg.atomics_roles["cache_gen"], AtomicRole::Publish);
        assert_eq!(cfg.atomics_roles["rebuilding"], AtomicRole::Gate);
    }

    #[test]
    fn blocking_class_must_exist_in_lock_order() {
        let bad = "[locks]\norder = []\n[blocking]\nclasses = [\"registry\"]";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn atomic_declared_in_two_roles_rejected() {
        let dup = "[atomics.role.counter]\nreceivers = [\"x\"]\n\
                   [atomics.role.gate]\nreceivers = [\"x\"]";
        assert!(parse(dup).is_err());
    }

    #[test]
    fn unknown_atomic_role_rejected() {
        assert!(parse("[atomics.role.mystic]\nreceivers = [\"x\"]").is_err());
    }
}
