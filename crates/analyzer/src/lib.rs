//! `timecrypt-analyzer` — a repo-specific static analysis gate.
//!
//! The TimeCrypt reproduction's concurrency and wire-protocol invariants
//! (documented in `ARCHITECTURE.md` §"Static analysis") are enforced here
//! as seven mechanical rules over lexed source text:
//!
//! 1. `unsafe-hygiene` — every `unsafe` needs an adjacent `// SAFETY:`.
//! 2. `panic-freedom` — no `.unwrap()`/`.expect(`/panicking macros in
//!    non-test code of the hot-path crates.
//! 3. `lock-ordering` — nested lock acquisitions must follow the
//!    documented order (config-driven), checked both within one function
//!    body and across call chains via the workspace call graph.
//! 4. `wire-tags` — the wire tag space must be duplicate-free, fully
//!    round-trippable, and consistent with the reserved-tag ledger.
//! 5. `no-alloc` — `// lint: deny(alloc)` functions must not allocate.
//! 6. `blocking-under-lock` — no store I/O, socket reads, or sleeps
//!    (transitively) while holding a configured blocking-sensitive lock
//!    class.
//! 7. `atomics-ordering` — every `Ordering::*` usage must match the
//!    declared role of its atomic (counter / publish / gate).
//!
//! Rules 3, 6, and 7 are driven by an interprocedural layer: [`heldset`]
//! walks each function body tracking live lock guards, [`callgraph`]
//! resolves call sites to workspace definitions (name-based,
//! over-approximating) and propagates may-acquire / may-block summaries
//! to a fixpoint, and diagnostics carry the full witness call chain.
//!
//! Deliberately dependency-free (crates.io is not assumed reachable) and
//! parser-free: a comment/string-aware lexer ([`lexer`]) plus brace
//! matching ([`scan`]) is enough for all seven rules, keeps the gate under
//! a second on the workspace, and cannot fall behind rustc's grammar.
//!
//! Per-statement escape hatch, reason mandatory:
//! `// lint: allow(<rule>) — <why this site is sound>`.

pub mod callgraph;
pub mod config;
pub mod heldset;
pub mod lexer;
pub mod rules;
pub mod scan;

use scan::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// One diagnostic, printed as `path:line: [rule] message`.
#[derive(Debug, Clone, Default)]
pub struct Violation {
    /// Rule identifier (or `directive` for malformed `lint:` comments).
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
    /// For interprocedural findings: the witness call chain, one hop per
    /// element, ending with the offending effect. Empty for local
    /// findings.
    pub chain: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n    chain: {}", self.chain.join("\n        → "))?;
        }
        Ok(())
    }
}

/// Analysis summary: what ran and what it found.
pub struct Report {
    /// Number of files analyzed.
    pub files: usize,
    /// Sorted violations (empty means the gate passes).
    pub violations: Vec<Violation>,
}

/// Runs the full analysis on the workspace rooted at `root` (the
/// directory holding `analyzer.toml`).
pub fn analyze(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join("analyzer.toml");
    let cfg_src = fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = config::parse(&cfg_src).map_err(|e| e.to_string())?;
    let files = collect_sources(root)?;
    let violations = rules::run_all(&cfg, &files);
    Ok(Report {
        files: files.len(),
        violations,
    })
}

/// Gathers the workspace's own sources: the facade's `src/` plus every
/// `crates/<name>/src/`. Vendored stand-ins (`vendor/`), build output,
/// integration-test dirs, and benches are out of scope: the rules guard
/// *our* invariants, not third-party idiom.
fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut sources = Vec::new();
    let mut units: Vec<(String, PathBuf)> = vec![("timecrypt".into(), root.join("src"))];
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        units.push((name, dir.join("src")));
    }
    for (crate_name, src_dir) in units {
        let mut rs_files = Vec::new();
        walk(&src_dir, &mut rs_files)?;
        rs_files.sort();
        for path in rs_files {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push(SourceFile::parse(&rel, &crate_name, &text));
        }
    }
    Ok(sources)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(()); // a crate without src/ (or a race with a delete)
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
