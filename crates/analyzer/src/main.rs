//! CI gate entry point: analyze the workspace, print `file:line` diagnostics,
//! exit nonzero on any violation.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!("usage: timecrypt-analyzer [--root <workspace>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("error: no analyzer.toml found walking up from the current directory");
            return ExitCode::FAILURE;
        }
    };
    match timecrypt_analyzer::analyze(&root) {
        Ok(report) if report.violations.is_empty() => {
            println!("timecrypt-analyzer: clean ({} files)", report.files);
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            eprintln!(
                "timecrypt-analyzer: {} violation(s) in {} files",
                report.violations.len(),
                report.files
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("timecrypt-analyzer: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Walks up from the current directory to the first `analyzer.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("analyzer.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
