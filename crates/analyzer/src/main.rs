//! CI gate entry point: analyze the workspace, print `file:line` diagnostics
//! (or a `--json` report for machines), exit nonzero on any violation.

use std::path::PathBuf;
use std::process::ExitCode;

use timecrypt_analyzer::Report;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: timecrypt-analyzer [--root <workspace>] [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("error: no analyzer.toml found walking up from the current directory");
            return ExitCode::FAILURE;
        }
    };
    match timecrypt_analyzer::analyze(&root) {
        Ok(report) => {
            if json {
                println!("{}", to_json(&report));
            } else if report.violations.is_empty() {
                println!("timecrypt-analyzer: clean ({} files)", report.files);
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                eprintln!(
                    "timecrypt-analyzer: {} violation(s) in {} files",
                    report.violations.len(),
                    report.files
                );
            }
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("timecrypt-analyzer: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Hand-rolled JSON report (the analyzer is dependency-free by design):
/// `{"files":N,"violations":[{"file","line","rule","msg","chain":[…]}]}`.
fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"files\":{},\"violations\":[", report.files));
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"msg\":{},\"chain\":[",
            json_str(&v.path),
            v.line,
            json_str(v.rule),
            json_str(&v.msg)
        ));
        for (j, hop) in v.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_str(hop));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Walks up from the current directory to the first `analyzer.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("analyzer.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
