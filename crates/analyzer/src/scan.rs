//! Shared per-file analysis state: lexed lines plus the derived views the
//! rules need — `#[cfg(test)]` regions, allowlist directives, `deny(alloc)`
//! zone markers, and function-span extraction.

use crate::lexer::{self, Line};
use crate::Violation;

/// Rule identifiers, exactly as they appear in `lint: allow(<rule>)`.
pub const RULES: [&str; 7] = [
    "unsafe-hygiene",
    "panic-freedom",
    "lock-ordering",
    "wire-tags",
    "no-alloc",
    "blocking-under-lock",
    "atomics-ordering",
];

/// One analyzed source file.
pub struct SourceFile {
    /// Path relative to the repo root, as printed in diagnostics.
    pub rel_path: String,
    /// Owning crate (directory name under `crates/`, or `timecrypt` for
    /// the facade's `src/`).
    pub crate_name: String,
    /// Lexed code/comment views, one per source line.
    pub lines: Vec<Line>,
    /// Per line: true when the line sits inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Per line: rules allowlisted for that line via `lint: allow(...)`.
    pub allows: Vec<Vec<String>>,
    /// Per line: id of the statement group the line belongs to (the 0-based
    /// index of the group's first line). Directives bind to whole groups,
    /// so a multi-line method chain (`.lock()\n.unwrap()`) can be
    /// annotated on any of its lines.
    pub stmt: Vec<usize>,
    /// Line indices carrying a `lint: deny(alloc)` marker: the next
    /// function (or one starting on the same line) is a no-alloc zone.
    pub deny_alloc: Vec<usize>,
    /// Malformed directives found while scanning (reported as violations
    /// so a typo can't silently disable a check).
    pub directive_errors: Vec<Violation>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, crate_name: &str, src: &str) -> SourceFile {
        let lines = lexer::lex(src);
        let in_test = test_mask(&lines);
        let stmt = stmt_groups(&lines);
        let mut f = SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            in_test,
            allows: vec![Vec::new(); lines.len()],
            stmt,
            deny_alloc: Vec::new(),
            directive_errors: Vec::new(),
            lines,
        };
        f.collect_directives();
        f
    }

    /// True if `rule` is allowlisted on 0-based line `idx`.
    pub fn allowed(&self, idx: usize, rule: &str) -> bool {
        self.allows
            .get(idx)
            .is_some_and(|rs| rs.iter().any(|r| r == rule))
    }

    fn collect_directives(&mut self) {
        for idx in 0..self.lines.len() {
            let comment = self.lines[idx].comment.clone();
            // A directive must open the comment: `// lint: ...`. Doc
            // comments (`///`, `//!`) lex with a leading `/`/`!` in their
            // text, so prose *describing* the syntax never parses as a
            // directive.
            let Some(rest) = comment.trim_start().strip_prefix("lint:") else {
                continue;
            };
            let directive = rest.trim();
            if let Some(rest) = directive.strip_prefix("allow(") {
                let Some((rule, tail)) = rest.split_once(')') else {
                    self.directive_error(idx, "unterminated `lint: allow(`");
                    continue;
                };
                let rule = rule.trim().to_string();
                if !RULES.contains(&rule.as_str()) {
                    self.directive_error(idx, &format!("unknown rule `{rule}` in allow()"));
                    continue;
                }
                // The reason is mandatory: `— why this is sound`, after a
                // dash of some kind.
                let reason = tail.trim_start().trim_start_matches(['—', '-', '–']).trim();
                if reason.is_empty() {
                    self.directive_error(
                        idx,
                        &format!("allow({rule}) needs a reason: `// lint: allow({rule}) — why`"),
                    );
                    continue;
                }
                let target = self.directive_target(idx);
                // The directive covers the whole statement the target line
                // belongs to, so multi-line chains can be annotated on the
                // acquisition line even when the flagged token sits on a
                // continuation line (and vice versa).
                for li in self.stmt_lines(target) {
                    self.allows[li].push(rule.clone());
                }
            } else if directive.starts_with("deny(alloc)") {
                self.deny_alloc.push(idx);
            } else {
                self.directive_error(idx, &format!("unrecognized directive `lint: {directive}`"));
            }
        }
    }

    /// A directive on a comment-only line governs the next code line; on a
    /// trailing comment it governs its own line.
    fn directive_target(&self, idx: usize) -> usize {
        if !self.lines[idx].is_code_blank() {
            return idx;
        }
        (idx + 1..self.lines.len())
            .find(|&j| !self.lines[j].is_code_blank())
            .unwrap_or(idx)
    }

    /// The 0-based line range of the statement group containing `idx`.
    pub fn stmt_lines(&self, idx: usize) -> std::ops::Range<usize> {
        let Some(&group) = self.stmt.get(idx) else {
            return idx..idx + 1;
        };
        let end = (idx..self.stmt.len())
            .find(|&j| self.stmt[j] != group)
            .unwrap_or(self.stmt.len());
        group..end
    }

    fn directive_error(&mut self, idx: usize, msg: &str) {
        self.directive_errors.push(Violation {
            rule: "directive",
            path: self.rel_path.clone(),
            line: idx + 1,
            msg: msg.to_string(),
            chain: Vec::new(),
        });
    }

    /// Extracts every function span in the file (header line, body braces).
    pub fn functions(&self) -> Vec<FnSpan> {
        let mut spans = Vec::new();
        let mut idx = 0;
        while idx < self.lines.len() {
            let code = &self.lines[idx].code;
            let Some(name_at) = fn_name_pos(code) else {
                idx += 1;
                continue;
            };
            let name: String = code[name_at..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            match self.body_after(idx, name_at) {
                Some((open, close)) => {
                    spans.push(FnSpan {
                        name,
                        header: idx,
                        body_open: open,
                        body_close: close,
                    });
                    // Scan on from the line after the header so nested fns
                    // declared further down are still found.
                    idx += 1;
                }
                None => idx += 1,
            }
        }
        spans
    }

    /// From the `fn` header at `line`/`col`, finds the body's `{ … }` as
    /// ((line, col), (line, col)); `None` for bodyless trait signatures.
    fn body_after(&self, line: usize, col: usize) -> Option<(Pos, Pos)> {
        let mut paren = 0i32;
        let mut open: Option<Pos> = None;
        let mut depth = 0i32;
        for (li, l) in self.lines.iter().enumerate().skip(line) {
            let start = if li == line { col } else { 0 };
            for (ci, c) in l.code.char_indices().skip_while(|(ci, _)| *ci < start) {
                match (open, c) {
                    (None, '(' | '[') => paren += 1,
                    (None, ')' | ']') => paren -= 1,
                    (None, ';') if paren == 0 => return None,
                    (None, '{') if paren == 0 => {
                        open = Some(Pos { line: li, col: ci });
                        depth = 1;
                    }
                    (Some(_), '{') => depth += 1,
                    (Some(o), '}') => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((o, Pos { line: li, col: ci }));
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }
}

/// A (line, column) position in a file, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: usize,
    pub col: usize,
}

/// One function's location: header line plus body brace positions.
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    /// Line holding the `fn` keyword.
    pub header: usize,
    /// Position of the body's `{`.
    pub body_open: Pos,
    /// Position of the body's matching `}`.
    pub body_close: Pos,
}

/// Column of a function's name on a header line, if the line declares one.
fn fn_name_pos(code: &str) -> Option<usize> {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find("fn ") {
        let at = from + p;
        let left_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        if left_ok {
            let name_at = at + 3 + code[at + 3..].len() - code[at + 3..].trim_start().len();
            if b.get(name_at)
                .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
            {
                return Some(name_at);
            }
        }
        from = at + 3;
    }
    None
}

/// Groups lines into statements: a line continues into the next when it
/// ends inside an open paren/bracket group or without a terminator
/// (`;`, `{`, `}`, or a depth-0 `,` — the latter splits match arms and
/// struct fields while keeping multi-line call arguments together).
/// String contents are already blanked by the lexer, so the punctuation
/// scan is exact. Each line gets the index of its group's first line.
fn stmt_groups(lines: &[Line]) -> Vec<usize> {
    let mut ids = Vec::with_capacity(lines.len());
    let mut group = 0usize;
    let mut paren = 0i32;
    let mut in_flight = false;
    for (idx, l) in lines.iter().enumerate() {
        if !in_flight {
            group = idx;
        }
        ids.push(group);
        for c in l.code.chars() {
            match c {
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                _ => {}
            }
        }
        let code = l.code.trim_end();
        let terminated = if code.trim().is_empty() {
            // Blank / comment-only lines extend an in-flight statement
            // (a directive comment can sit mid-chain) but never start one.
            !in_flight
        } else {
            paren <= 0 && matches!(code.chars().last(), Some(';' | '{' | '}' | ','))
        };
        in_flight = !terminated;
    }
    ids
}

/// Marks lines covered by `#[cfg(test)]` items (the attribute, the item
/// header, and the brace-matched body).
fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth = 0i32;
    // When a `#[cfg(test)]` attribute has been seen: the depth at which it
    // appeared, so an intervening `;` (attr on a `use`) can cancel it.
    let mut pending: Option<i32> = None;
    // When inside a test item: the depth just outside its `{`.
    let mut test_until: Option<i32> = None;
    for (idx, l) in lines.iter().enumerate() {
        if l.code.contains("#[cfg(test)]") && test_until.is_none() {
            pending = Some(depth);
            mask[idx] = true;
        }
        for c in l.code.chars() {
            match c {
                '{' => {
                    if let Some(p) = pending.take() {
                        test_until = Some(p);
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_until.is_some_and(|t| depth <= t) {
                        test_until = None;
                        mask[idx] = true;
                    }
                }
                ';' if pending.is_some_and(|p| p == depth) => pending = None,
                _ => {}
            }
        }
        if test_until.is_some() || pending.is_some() {
            mask[idx] = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("test.rs", "test", src)
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let f = file(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live2() {}\n",
        );
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn cfg_test_on_use_does_not_swallow_following_code() {
        let f = file("#[cfg(test)]\nuse std::fmt;\nfn live() {}\n");
        assert!(!f.in_test[2]);
    }

    #[test]
    fn allow_directive_targets_same_or_next_line() {
        let f = file(
            "x.unwrap(); // lint: allow(panic-freedom) — provable\n// lint: allow(no-alloc) — cold path\ny();\n",
        );
        assert!(f.allowed(0, "panic-freedom"));
        assert!(!f.allowed(1, "no-alloc"));
        assert!(f.allowed(2, "no-alloc"));
        assert!(f.directive_errors.is_empty());
    }

    #[test]
    fn allow_covers_the_whole_multiline_statement() {
        // The directive sits on the acquisition line; the flagged token is
        // on the continuation line of the same method chain.
        let f = file(
            "let g = self.queue.lock() // lint: allow(panic-freedom) — poisoning is fatal by design\n    .unwrap();\nother();\n",
        );
        assert!(f.allowed(0, "panic-freedom"));
        assert!(f.allowed(1, "panic-freedom"));
        assert!(!f.allowed(2, "panic-freedom"));
        assert!(f.directive_errors.is_empty());
    }

    #[test]
    fn directive_comment_above_covers_following_multiline_statement() {
        let f = file(
            "// lint: allow(lock-ordering) — init path, single-threaded\nlet g = self.stripes[0]\n    .lock();\nnext();\n",
        );
        assert!(f.allowed(1, "lock-ordering"));
        assert!(f.allowed(2, "lock-ordering"));
        assert!(!f.allowed(3, "lock-ordering"));
    }

    #[test]
    fn stmt_groups_split_on_terminators_and_join_open_parens() {
        let f = file("foo(a,\n  b);\nlet x = 1;\nmatch y {\n  A => a(),\n  B => b(),\n}\n");
        // Multi-line call args share a group.
        assert_eq!(f.stmt[0], f.stmt[1]);
        // `;` terminates.
        assert_ne!(f.stmt[1], f.stmt[2]);
        // Match arms end with a depth-0 `,` and stay separate.
        assert_ne!(f.stmt[4], f.stmt[5]);
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let f = file("x.unwrap(); // lint: allow(panic-freedom)\n");
        assert_eq!(f.directive_errors.len(), 1);
        assert!(!f.allowed(0, "panic-freedom"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let f = file("x(); // lint: allow(made-up) — whatever\n");
        assert_eq!(f.directive_errors.len(), 1);
    }

    #[test]
    fn deny_alloc_marker_recorded() {
        let f = file("// lint: deny(alloc)\nfn hot() {}\n");
        assert_eq!(f.deny_alloc, vec![0]);
    }

    #[test]
    fn functions_are_spanned() {
        let f = file("fn a() {\n  inner();\n}\npub fn b(x: i32) -> i32 { x }\n");
        let fns = f.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[0].body_open.line, 0);
        assert_eq!(fns[0].body_close.line, 2);
        assert_eq!(fns[1].name, "b");
        assert_eq!(fns[1].body_close.line, 3);
    }

    #[test]
    fn trait_signatures_without_body_are_skipped() {
        let f =
            file("trait T {\n  fn sig(&self) -> u32;\n  fn with_default(&self) { body(); }\n}\n");
        let fns = f.functions();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "with_default");
    }

    #[test]
    fn multiline_signatures_find_their_body() {
        let f = file("fn long(\n  a: i32,\n  b: i32,\n) -> i32 {\n  a + b\n}\n");
        let fns = f.functions();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].body_open.line, 3);
        assert_eq!(fns[0].body_close.line, 5);
    }
}
