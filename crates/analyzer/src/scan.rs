//! Shared per-file analysis state: lexed lines plus the derived views the
//! rules need — `#[cfg(test)]` regions, allowlist directives, `deny(alloc)`
//! zone markers, and function-span extraction.

use crate::lexer::{self, Line};
use crate::Violation;

/// Rule identifiers, exactly as they appear in `lint: allow(<rule>)`.
pub const RULES: [&str; 5] = [
    "unsafe-hygiene",
    "panic-freedom",
    "lock-ordering",
    "wire-tags",
    "no-alloc",
];

/// One analyzed source file.
pub struct SourceFile {
    /// Path relative to the repo root, as printed in diagnostics.
    pub rel_path: String,
    /// Owning crate (directory name under `crates/`, or `timecrypt` for
    /// the facade's `src/`).
    pub crate_name: String,
    /// Lexed code/comment views, one per source line.
    pub lines: Vec<Line>,
    /// Per line: true when the line sits inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Per line: rules allowlisted for that line via `lint: allow(...)`.
    pub allows: Vec<Vec<String>>,
    /// Line indices carrying a `lint: deny(alloc)` marker: the next
    /// function (or one starting on the same line) is a no-alloc zone.
    pub deny_alloc: Vec<usize>,
    /// Malformed directives found while scanning (reported as violations
    /// so a typo can't silently disable a check).
    pub directive_errors: Vec<Violation>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, crate_name: &str, src: &str) -> SourceFile {
        let lines = lexer::lex(src);
        let in_test = test_mask(&lines);
        let mut f = SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            in_test,
            allows: vec![Vec::new(); lines.len()],
            deny_alloc: Vec::new(),
            directive_errors: Vec::new(),
            lines,
        };
        f.collect_directives();
        f
    }

    /// True if `rule` is allowlisted on 0-based line `idx`.
    pub fn allowed(&self, idx: usize, rule: &str) -> bool {
        self.allows
            .get(idx)
            .is_some_and(|rs| rs.iter().any(|r| r == rule))
    }

    fn collect_directives(&mut self) {
        for idx in 0..self.lines.len() {
            let comment = self.lines[idx].comment.clone();
            // A directive must open the comment: `// lint: ...`. Doc
            // comments (`///`, `//!`) lex with a leading `/`/`!` in their
            // text, so prose *describing* the syntax never parses as a
            // directive.
            let Some(rest) = comment.trim_start().strip_prefix("lint:") else {
                continue;
            };
            let directive = rest.trim();
            if let Some(rest) = directive.strip_prefix("allow(") {
                let Some((rule, tail)) = rest.split_once(')') else {
                    self.directive_error(idx, "unterminated `lint: allow(`");
                    continue;
                };
                let rule = rule.trim().to_string();
                if !RULES.contains(&rule.as_str()) {
                    self.directive_error(idx, &format!("unknown rule `{rule}` in allow()"));
                    continue;
                }
                // The reason is mandatory: `— why this is sound`, after a
                // dash of some kind.
                let reason = tail.trim_start().trim_start_matches(['—', '-', '–']).trim();
                if reason.is_empty() {
                    self.directive_error(
                        idx,
                        &format!("allow({rule}) needs a reason: `// lint: allow({rule}) — why`"),
                    );
                    continue;
                }
                let target = self.directive_target(idx);
                self.allows[target].push(rule);
            } else if directive.starts_with("deny(alloc)") {
                self.deny_alloc.push(idx);
            } else {
                self.directive_error(idx, &format!("unrecognized directive `lint: {directive}`"));
            }
        }
    }

    /// A directive on a comment-only line governs the next code line; on a
    /// trailing comment it governs its own line.
    fn directive_target(&self, idx: usize) -> usize {
        if !self.lines[idx].is_code_blank() {
            return idx;
        }
        (idx + 1..self.lines.len())
            .find(|&j| !self.lines[j].is_code_blank())
            .unwrap_or(idx)
    }

    fn directive_error(&mut self, idx: usize, msg: &str) {
        self.directive_errors.push(Violation {
            rule: "directive",
            path: self.rel_path.clone(),
            line: idx + 1,
            msg: msg.to_string(),
        });
    }

    /// Extracts every function span in the file (header line, body braces).
    pub fn functions(&self) -> Vec<FnSpan> {
        let mut spans = Vec::new();
        let mut idx = 0;
        while idx < self.lines.len() {
            let code = &self.lines[idx].code;
            let Some(name_at) = fn_name_pos(code) else {
                idx += 1;
                continue;
            };
            let name: String = code[name_at..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            match self.body_after(idx, name_at) {
                Some((open, close)) => {
                    spans.push(FnSpan {
                        name,
                        header: idx,
                        body_open: open,
                        body_close: close,
                    });
                    // Scan on from the line after the header so nested fns
                    // declared further down are still found.
                    idx += 1;
                }
                None => idx += 1,
            }
        }
        spans
    }

    /// From the `fn` header at `line`/`col`, finds the body's `{ … }` as
    /// ((line, col), (line, col)); `None` for bodyless trait signatures.
    fn body_after(&self, line: usize, col: usize) -> Option<(Pos, Pos)> {
        let mut paren = 0i32;
        let mut open: Option<Pos> = None;
        let mut depth = 0i32;
        for (li, l) in self.lines.iter().enumerate().skip(line) {
            let start = if li == line { col } else { 0 };
            for (ci, c) in l.code.char_indices().skip_while(|(ci, _)| *ci < start) {
                match (open, c) {
                    (None, '(' | '[') => paren += 1,
                    (None, ')' | ']') => paren -= 1,
                    (None, ';') if paren == 0 => return None,
                    (None, '{') if paren == 0 => {
                        open = Some(Pos { line: li, col: ci });
                        depth = 1;
                    }
                    (Some(_), '{') => depth += 1,
                    (Some(o), '}') => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((o, Pos { line: li, col: ci }));
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }
}

/// A (line, column) position in a file, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: usize,
    pub col: usize,
}

/// One function's location: header line plus body brace positions.
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    /// Line holding the `fn` keyword.
    pub header: usize,
    /// Position of the body's `{`.
    pub body_open: Pos,
    /// Position of the body's matching `}`.
    pub body_close: Pos,
}

/// Column of a function's name on a header line, if the line declares one.
fn fn_name_pos(code: &str) -> Option<usize> {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find("fn ") {
        let at = from + p;
        let left_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        if left_ok {
            let name_at = at + 3 + code[at + 3..].len() - code[at + 3..].trim_start().len();
            if b.get(name_at)
                .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
            {
                return Some(name_at);
            }
        }
        from = at + 3;
    }
    None
}

/// Marks lines covered by `#[cfg(test)]` items (the attribute, the item
/// header, and the brace-matched body).
fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth = 0i32;
    // When a `#[cfg(test)]` attribute has been seen: the depth at which it
    // appeared, so an intervening `;` (attr on a `use`) can cancel it.
    let mut pending: Option<i32> = None;
    // When inside a test item: the depth just outside its `{`.
    let mut test_until: Option<i32> = None;
    for (idx, l) in lines.iter().enumerate() {
        if l.code.contains("#[cfg(test)]") && test_until.is_none() {
            pending = Some(depth);
            mask[idx] = true;
        }
        for c in l.code.chars() {
            match c {
                '{' => {
                    if let Some(p) = pending.take() {
                        test_until = Some(p);
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_until.is_some_and(|t| depth <= t) {
                        test_until = None;
                        mask[idx] = true;
                    }
                }
                ';' if pending.is_some_and(|p| p == depth) => pending = None,
                _ => {}
            }
        }
        if test_until.is_some() || pending.is_some() {
            mask[idx] = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("test.rs", "test", src)
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let f = file(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live2() {}\n",
        );
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn cfg_test_on_use_does_not_swallow_following_code() {
        let f = file("#[cfg(test)]\nuse std::fmt;\nfn live() {}\n");
        assert!(!f.in_test[2]);
    }

    #[test]
    fn allow_directive_targets_same_or_next_line() {
        let f = file(
            "x.unwrap(); // lint: allow(panic-freedom) — provable\n// lint: allow(no-alloc) — cold path\ny();\n",
        );
        assert!(f.allowed(0, "panic-freedom"));
        assert!(!f.allowed(1, "no-alloc"));
        assert!(f.allowed(2, "no-alloc"));
        assert!(f.directive_errors.is_empty());
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let f = file("x.unwrap(); // lint: allow(panic-freedom)\n");
        assert_eq!(f.directive_errors.len(), 1);
        assert!(!f.allowed(0, "panic-freedom"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let f = file("x(); // lint: allow(made-up) — whatever\n");
        assert_eq!(f.directive_errors.len(), 1);
    }

    #[test]
    fn deny_alloc_marker_recorded() {
        let f = file("// lint: deny(alloc)\nfn hot() {}\n");
        assert_eq!(f.deny_alloc, vec![0]);
    }

    #[test]
    fn functions_are_spanned() {
        let f = file("fn a() {\n  inner();\n}\npub fn b(x: i32) -> i32 { x }\n");
        let fns = f.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[0].body_open.line, 0);
        assert_eq!(fns[0].body_close.line, 2);
        assert_eq!(fns[1].name, "b");
        assert_eq!(fns[1].body_close.line, 3);
    }

    #[test]
    fn trait_signatures_without_body_are_skipped() {
        let f =
            file("trait T {\n  fn sig(&self) -> u32;\n  fn with_default(&self) { body(); }\n}\n");
        let fns = f.functions();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "with_default");
    }

    #[test]
    fn multiline_signatures_find_their_body() {
        let f = file("fn long(\n  a: i32,\n  b: i32,\n) -> i32 {\n  a + b\n}\n");
        let fns = f.functions();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].body_open.line, 3);
        assert_eq!(fns[0].body_close.line, 5);
    }
}
