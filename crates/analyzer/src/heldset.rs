//! Guard-tracking walker: for one function body, records which lock-class
//! guards are held at every lock acquisition, call site, and direct
//! blocking operation. These per-function facts feed the call graph
//! ([`crate::callgraph`]) and the interprocedural rules.
//!
//! The body is walked as one joined text (lines concatenated with `\n`),
//! so rustfmt'd multi-line method chains (`self.registry\n    .lock()`)
//! resolve their receivers — the per-line walker in earlier revisions
//! could not see past the line break.
//!
//! Guard lifetime model, biased toward holding too long (a reviewable
//! false positive beats a missed deadlock):
//! - A `let`-bound guard lives until its surrounding brace scope closes or
//!   an explicit `drop(name)` runs. If the chain continues past the lock
//!   call (`let ok = x.lock().is_empty();`) the binding holds the chain's
//!   result, not the guard — the guard is a temporary (`.unwrap()` /
//!   `.expect(…)` adapters excepted: those still yield the guard).
//! - A scrutinee guard (`match`/`if`/`while`/`for` over a lock call) lives
//!   like a `let` binding.
//! - An unbound temporary dies at the next `;`.

use crate::config::Config;
use crate::scan::{FnSpan, SourceFile};

/// A lock class held at some program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Held {
    /// Index into the configured lock order (0 = outermost).
    pub rank: usize,
    pub class: String,
}

/// A lock acquisition site.
#[derive(Debug)]
pub struct Acquire {
    /// 0-based line of the acquisition.
    pub line: usize,
    pub rank: usize,
    pub class: String,
    /// Guards already held when this one is taken.
    pub held: Vec<Held>,
}

/// A call site that may resolve to workspace functions.
#[derive(Debug)]
pub struct Call {
    pub line: usize,
    pub name: String,
    pub held: Vec<Held>,
}

/// A direct blocking operation (store I/O, socket read, sleep, wait).
#[derive(Debug)]
pub struct Block {
    pub line: usize,
    /// Human-readable operation, e.g. `kv.put` or `sleep`.
    pub what: String,
    pub held: Vec<Held>,
}

/// Everything the interprocedural rules need to know about one body.
#[derive(Debug, Default)]
pub struct FnFacts {
    pub acquires: Vec<Acquire>,
    pub calls: Vec<Call>,
    pub blocks: Vec<Block>,
}

/// Lock acquisition methods, matched with empty parens only — `.read(buf)`
/// is I/O, not a guard.
const LOCK_METHODS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// Names that look like calls but aren't resolvable functions.
const NON_CALLS: [&str; 13] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "let", "else", "move", "fn",
    "drop",
];

struct Guard {
    rank: usize,
    class: String,
    /// Brace depth at the acquisition point; popped when depth drops
    /// below it.
    depth: i32,
    /// Binding name, for `drop(name)` release. `None` for temporaries.
    name: Option<String>,
    /// Temporaries die at the next `;`.
    temp: bool,
}

/// Walks the body of `span` in `f` and extracts its facts.
pub fn walk(cfg: &Config, f: &SourceFile, span: &FnSpan) -> FnFacts {
    // Join the body into one text so receivers and bindings can be read
    // across line breaks; remember where each source line starts.
    let mut text = String::new();
    let mut line_starts: Vec<(usize, usize)> = Vec::new();
    for li in span.body_open.line..=span.body_close.line {
        let code = &f.lines[li].code;
        let lo = if li == span.body_open.line {
            span.body_open.col
        } else {
            0
        };
        let hi = if li == span.body_close.line {
            span.body_close.col + 1
        } else {
            code.len()
        };
        line_starts.push((text.len(), li));
        text.push_str(&code[lo..hi.max(lo)]);
        text.push('\n');
    }
    let line_of = |pos: usize| -> usize {
        match line_starts.binary_search_by_key(&pos, |&(o, _)| o) {
            Ok(k) => line_starts[k].1,
            Err(k) => line_starts[k - 1].1,
        }
    };

    let bytes = text.as_bytes();
    let mut facts = FnFacts::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // Offset just past the last statement boundary (`;`, `{`, `}`):
    // receivers and binding patterns are read from here.
    let mut stmt_start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                stmt_start = i + 1;
            }
            b'}' => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                stmt_start = i + 1;
            }
            b';' => {
                guards.retain(|g| !g.temp);
                stmt_start = i + 1;
            }
            b'd' if text[i..].starts_with("drop(") && ident_boundary(bytes, i) => {
                let inner: String = text[i + 5..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if let Some(p) = guards
                    .iter()
                    .rposition(|g| g.name.as_deref() == Some(inner.as_str()))
                {
                    guards.remove(p);
                }
            }
            b'.' => {
                if let Some(m) = LOCK_METHODS.iter().find(|m| text[i..].starts_with(**m)) {
                    let prefix = text[stmt_start..i].trim_end();
                    if let Some((rank, class)) = classify(cfg, prefix) {
                        facts.acquires.push(Acquire {
                            line: line_of(i),
                            rank,
                            class: class.clone(),
                            held: held_now(&guards),
                        });
                        let temp =
                            !is_scoped(prefix) || chain_consumes(&text[i + m.len()..], prefix);
                        guards.push(Guard {
                            rank,
                            class,
                            depth,
                            name: (!temp).then(|| binding_name(prefix)).flatten(),
                            temp,
                        });
                    }
                    i += m.len();
                    continue;
                }
            }
            b'(' => {
                if let Some((name_start, name)) = call_name(&text, i) {
                    let line = line_of(i);
                    let held = held_now(&guards);
                    let recv = (name_start > 0 && bytes[name_start - 1] == b'.')
                        .then(|| receiver(text[stmt_start..name_start - 1].trim_end()))
                        .flatten();
                    let store_io = recv.as_deref().is_some_and(|r| {
                        cfg.blocking_store_receivers.iter().any(|s| s == r)
                            && cfg.blocking_store_methods.iter().any(|m| m == name)
                    });
                    if store_io {
                        facts.blocks.push(Block {
                            line,
                            what: format!("{}.{name}", recv.unwrap()),
                            held,
                        });
                    } else if cfg.blocking_calls.iter().any(|c| c == name) {
                        facts.blocks.push(Block {
                            line,
                            what: name.to_string(),
                            held,
                        });
                    } else {
                        facts.calls.push(Call {
                            line,
                            name: name.to_string(),
                            held,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

fn held_now(guards: &[Guard]) -> Vec<Held> {
    guards
        .iter()
        .map(|g| Held {
            rank: g.rank,
            class: g.class.clone(),
        })
        .collect()
}

/// The callable name immediately before the `(` at `open`, or `None` when
/// the paren is grouping, a macro invocation, a type constructor, a
/// keyword, or a nested `fn` definition header.
fn call_name(text: &str, open: usize) -> Option<(usize, &str)> {
    let bytes = text.as_bytes();
    let mut s = open;
    while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
        s -= 1;
    }
    if s == open {
        return None;
    }
    let name = &text[s..open];
    let first = name.chars().next()?;
    if first.is_ascii_uppercase() || first.is_ascii_digit() {
        return None; // tuple-struct / enum constructor, not a fn we define
    }
    if NON_CALLS.contains(&name) {
        return None;
    }
    // `fn helper(` — a nested definition header, not a call.
    let before = text[..s].trim_end();
    if before.ends_with("fn") {
        let b = before.as_bytes();
        let at = before.len() - 2;
        if at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_') {
            return None;
        }
    }
    Some((s, name))
}

/// Maps the receiver identifier before a lock call to its configured
/// class `(rank, name)`.
fn classify(cfg: &Config, prefix: &str) -> Option<(usize, String)> {
    let recv = receiver(prefix)?;
    for (rank, (class, receivers)) in cfg.lock_order.iter().enumerate() {
        if receivers.iter().any(|r| r == &recv) {
            return Some((rank, class.clone()));
        }
    }
    None
}

/// The identifier ending `prefix`, skipping one trailing balanced `(...)`
/// or `[...]` group: `self.write` → `write`, `stripes[i]` → `stripes`,
/// `stripe_for(t)` → `stripe_for`.
pub(crate) fn receiver(prefix: &str) -> Option<String> {
    let b = prefix.as_bytes();
    let mut i = prefix.len();
    while i > 0 && (b[i - 1] == b')' || b[i - 1] == b']') {
        let close = b[i - 1];
        let open = if close == b')' { b'(' } else { b'[' };
        let mut bal = 0i32;
        while i > 0 {
            i -= 1;
            if b[i] == close {
                bal += 1;
            } else if b[i] == open {
                bal -= 1;
                if bal == 0 {
                    break;
                }
            }
        }
    }
    let end = i;
    while i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        i -= 1;
    }
    (i < end).then(|| prefix[i..end].to_string())
}

/// Binding name for `let <pat> = ….lock()`: the last identifier in the
/// pattern (`let g`, `let mut g`, `let Ok(g)` all yield `g`).
fn binding_name(before: &str) -> Option<String> {
    let let_at = find_word(before, "let")?;
    let rest = &before[let_at + 3..];
    let pat = rest.split('=').next().unwrap_or(rest);
    let pat = pat.split(':').next().unwrap_or(pat);
    pat.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .rfind(|w| !w.is_empty() && *w != "mut")
        .map(|s| s.to_string())
}

/// True when the guard outlives the statement even without a binding: the
/// scrutinee of `match`/`if`/`while`/`for` lives for the whole block.
fn is_scoped(before: &str) -> bool {
    ["let", "match", "if", "while", "for"]
        .iter()
        .any(|k| find_word(before, k).is_some())
}

/// True when the method chain continuing in `after` consumes the guard,
/// so a `let` binds the chain's result, not the guard itself:
/// `let ok = x.lock().contains_key(k);` holds no lock past the `;`.
/// `.unwrap()` / `.expect(…)` pass the guard through; scrutinee temps
/// (`match`/`if`/…) keep the conservative whole-block lifetime because
/// Rust extends scrutinee temporaries to the end of the expression.
fn chain_consumes(after: &str, before: &str) -> bool {
    let scrutinee = ["match", "if", "while", "for"]
        .iter()
        .any(|k| find_word(before, k).is_some());
    if scrutinee {
        return false;
    }
    let mut rest = after.trim_start();
    while let Some(r) = rest
        .strip_prefix(".unwrap()")
        .or_else(|| rest.strip_prefix("?"))
    {
        rest = r.trim_start();
    }
    if let Some(r) = rest.strip_prefix(".expect(") {
        // Skip the message argument: guard passes through `.expect(…)`.
        let close = r.find(')').map(|p| p + 1).unwrap_or(r.len());
        rest = r[close..].trim_start();
    }
    rest.starts_with('.')
}

pub(crate) fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let b = hay.as_bytes();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let at = from + p;
        let end = at + needle.len();
        let left = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let right = end == b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if left && right {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

fn ident_boundary(b: &[u8], at: usize) -> bool {
    at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            lock_order: vec![
                ("registry".into(), vec!["registry".into()]),
                ("stripe".into(), vec!["stripe".into(), "stripes".into()]),
            ],
            blocking_store_receivers: vec!["kv".into()],
            blocking_store_methods: vec!["get".into(), "put".into()],
            blocking_calls: vec!["sleep".into()],
            ..Config::default()
        }
    }

    fn facts(src: &str) -> FnFacts {
        let f = SourceFile::parse("t.rs", "t", src);
        let spans = f.functions();
        walk(&cfg(), &f, &spans[0])
    }

    #[test]
    fn multiline_chain_resolves_receiver() {
        let fx =
            facts("fn f(&self) {\n  let g = self.registry\n    .lock();\n  self.helper();\n}\n");
        assert_eq!(fx.acquires.len(), 1);
        assert_eq!(fx.acquires[0].class, "registry");
        assert_eq!(fx.acquires[0].line, 2);
        // The later call sees the guard still held.
        let call = fx.calls.iter().find(|c| c.name == "helper").unwrap();
        assert_eq!(call.held.len(), 1);
        assert_eq!(call.held[0].class, "registry");
    }

    #[test]
    fn store_io_is_a_block_fact_with_held_set() {
        let fx = facts("fn f(&self) {\n  let g = self.registry.lock();\n  self.kv.put(k, v);\n}\n");
        assert_eq!(fx.blocks.len(), 1);
        assert_eq!(fx.blocks[0].what, "kv.put");
        assert_eq!(fx.blocks[0].held[0].class, "registry");
    }

    #[test]
    fn sleep_is_a_block_fact() {
        let fx = facts("fn f() {\n  thread::sleep(d);\n}\n");
        assert_eq!(fx.blocks.len(), 1);
        assert_eq!(fx.blocks[0].what, "sleep");
        assert!(fx.blocks[0].held.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_semicolon() {
        let fx = facts("fn f(&self) {\n  self.stripes[0].lock().push(x);\n  self.helper();\n}\n");
        let call = fx.calls.iter().find(|c| c.name == "helper").unwrap();
        assert!(call.held.is_empty());
    }

    #[test]
    fn let_bound_chain_result_is_not_a_guard() {
        // The binding holds the bool, not the guard: dies at the `;`.
        let fx = facts(
            "fn f(&self) {\n  let ok = self.registry.lock().contains(&k);\n  self.helper();\n}\n",
        );
        let call = fx.calls.iter().find(|c| c.name == "helper").unwrap();
        assert!(call.held.is_empty());
        // `.unwrap()` passes the guard through: still bound.
        let fx =
            facts("fn f(&self) {\n  let g = self.registry.lock().unwrap();\n  self.helper();\n}\n");
        let call = fx.calls.iter().find(|c| c.name == "helper").unwrap();
        assert_eq!(call.held.len(), 1);
    }

    #[test]
    fn scope_close_and_drop_release_guards() {
        let fx = facts(
            "fn f(&self) {\n  {\n    let s = self.stripes[0].lock();\n  }\n  let r = self.registry.lock();\n  drop(r);\n  self.helper();\n}\n",
        );
        let call = fx.calls.iter().find(|c| c.name == "helper").unwrap();
        assert!(call.held.is_empty());
    }

    #[test]
    fn constructors_macros_and_keywords_are_not_calls() {
        let fx =
            facts("fn f() {\n  let x = Some(1);\n  vec![];\n  println!(\"x\");\n  if (a) {}\n}\n");
        assert!(fx.calls.is_empty());
    }

    #[test]
    fn nested_fn_header_is_not_a_call() {
        let fx = facts("fn outer() {\n  fn inner(x: i32) {}\n  inner(1);\n}\n");
        assert_eq!(fx.calls.len(), 1);
        assert_eq!(fx.calls[0].name, "inner");
    }

    #[test]
    fn receiver_extraction_cases() {
        assert_eq!(receiver("self.write").as_deref(), Some("write"));
        assert_eq!(receiver("self.stripes[i + 1]").as_deref(), Some("stripes"));
        assert_eq!(
            receiver("self.stripe_for(t)").as_deref(),
            Some("stripe_for")
        );
        assert_eq!(receiver("  "), None);
    }
}
