//! Workspace-wide call graph over the lexer's function spans, plus
//! may-acquire / may-block summaries propagated along call edges to a
//! fixpoint. This is what turns the per-function facts of
//! [`crate::heldset`] into interprocedural diagnostics with full call
//! chains.
//!
//! Resolution is name-based and conservatively over-approximates: a call
//! site `x.foo(…)` / `path::foo(…)` / `foo(…)` edges to *every* workspace
//! function named `foo`. The one precision valve is the configured
//! `[callgraph] ambient_methods` list — std container/iterator idiom
//! (`get`, `insert`, `lock`, `push`, …) whose names collide with
//! everything and would drown the graph in false edges. Calls to ambient
//! names get no edges; the effects that matter behind them (store I/O,
//! lock acquisition) are recognized lexically by the walker instead, so
//! dropping the edge loses no checked invariant.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::config::Config;
use crate::heldset::{self, FnFacts};
use crate::scan::{FnSpan, SourceFile};

/// One workspace function definition with its walked facts.
pub struct Def {
    pub name: String,
    /// Index into the analyzed file list.
    pub file: usize,
    /// The file's repo-relative path (cloned for chain rendering).
    pub path: String,
    pub span: FnSpan,
    pub facts: FnFacts,
}

/// The call graph: definitions plus per-call-site edge lists.
pub struct Graph {
    pub defs: Vec<Def>,
    /// `edges[d][c]` = def indices call site `c` of def `d` may reach.
    pub edges: Vec<Vec<Vec<usize>>>,
}

/// Builds the graph from every non-test function in `files`.
pub fn build(cfg: &Config, files: &[SourceFile]) -> Graph {
    let mut defs = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if cfg.callgraph_exclude.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        for span in f.functions() {
            if f.in_test.get(span.header).copied().unwrap_or(false) {
                continue;
            }
            let facts = heldset::walk(cfg, f, &span);
            defs.push(Def {
                name: span.name.clone(),
                file: fi,
                path: f.rel_path.clone(),
                span,
                facts,
            });
        }
    }
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, d) in defs.iter().enumerate() {
        by_name.entry(d.name.as_str()).or_default().push(i);
    }
    let ambient: HashSet<&str> = cfg.ambient_methods.iter().map(String::as_str).collect();
    let edges = defs
        .iter()
        .map(|d| {
            d.facts
                .calls
                .iter()
                .map(|c| {
                    if ambient.contains(c.name.as_str()) {
                        Vec::new()
                    } else {
                        by_name.get(c.name.as_str()).cloned().unwrap_or_default()
                    }
                })
                .collect()
        })
        .collect();
    Graph { defs, edges }
}

/// What a call to some function may do, transitively. Chains are witness
/// paths, pre-rendered outermost-first: each element is one hop
/// (`` `f` calls `g` (path:line) ``) and the last element is the effect
/// itself (`` `h` acquires `roles` (path:line) ``).
#[derive(Debug, Clone)]
pub struct AcqInfo {
    pub class: String,
    pub chain: Vec<String>,
}

#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// The blocking operation, e.g. `kv.put` or `sleep`.
    pub what: String,
    pub chain: Vec<String>,
}

/// Transitive effect summary for one def.
#[derive(Debug, Default, Clone)]
pub struct Summary {
    /// Lock ranks this function may acquire (directly or via callees),
    /// each with one witness chain. First-found chains are kept, so the
    /// output is deterministic across runs.
    pub may_acquire: BTreeMap<usize, AcqInfo>,
    /// Set when the function may reach a blocking operation.
    pub may_block: Option<BlockInfo>,
}

/// Propagates local facts along call edges until nothing changes.
/// Monotone (ranks are only ever added, chains never replaced), so the
/// fixpoint terminates in at most `defs × ranks` insertions.
pub fn summarize(g: &Graph) -> Vec<Summary> {
    let mut sums: Vec<Summary> = g
        .defs
        .iter()
        .map(|d| {
            let mut s = Summary::default();
            for a in &d.facts.acquires {
                s.may_acquire.entry(a.rank).or_insert_with(|| AcqInfo {
                    class: a.class.clone(),
                    chain: vec![format!(
                        "`{}` acquires `{}` ({}:{})",
                        d.name,
                        a.class,
                        d.path,
                        a.line + 1
                    )],
                });
            }
            if let Some(b) = d.facts.blocks.first() {
                s.may_block = Some(BlockInfo {
                    what: b.what.clone(),
                    chain: vec![format!(
                        "`{}` blocks on `{}` ({}:{})",
                        d.name,
                        b.what,
                        d.path,
                        b.line + 1
                    )],
                });
            }
            s
        })
        .collect();
    loop {
        let mut changed = false;
        for d in 0..g.defs.len() {
            for (ci, callees) in g.edges[d].iter().enumerate() {
                let call = &g.defs[d].facts.calls[ci];
                let hop = || {
                    format!(
                        "`{}` calls `{}` ({}:{})",
                        g.defs[d].name,
                        call.name,
                        g.defs[d].path,
                        call.line + 1
                    )
                };
                for &c in callees {
                    let fresh: Vec<(usize, AcqInfo)> = sums[c]
                        .may_acquire
                        .iter()
                        .filter(|(r, _)| !sums[d].may_acquire.contains_key(r))
                        .map(|(r, info)| (*r, info.clone()))
                        .collect();
                    for (r, info) in fresh {
                        let mut chain = vec![hop()];
                        chain.extend(info.chain);
                        sums[d].may_acquire.insert(
                            r,
                            AcqInfo {
                                class: info.class,
                                chain,
                            },
                        );
                        changed = true;
                    }
                    if sums[d].may_block.is_none() {
                        if let Some(b) = sums[c].may_block.clone() {
                            let mut chain = vec![hop()];
                            chain.extend(b.chain);
                            sums[d].may_block = Some(BlockInfo {
                                what: b.what,
                                chain,
                            });
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            lock_order: vec![
                ("roles".into(), vec!["roles".into()]),
                ("registry".into(), vec!["registry".into()]),
            ],
            ambient_methods: vec!["lock".into(), "read".into(), "clone".into()],
            blocking_store_receivers: vec!["kv".into()],
            blocking_store_methods: vec!["put".into()],
            blocking_calls: vec!["sleep".into()],
            ..Config::default()
        }
    }

    fn graph(src: &str) -> (Graph, Vec<Summary>) {
        let f = SourceFile::parse("t.rs", "t", src);
        let g = build(&cfg(), &[f]);
        let s = summarize(&g);
        (g, s)
    }

    #[test]
    fn edges_resolve_same_name_defs_but_not_ambient() {
        let (g, _) = graph("fn a(&self) {\n  self.b();\n  x.clone();\n}\nfn b(&self) {}\n");
        assert_eq!(g.defs.len(), 2);
        // `b` resolves, `clone` is ambient.
        let a_edges: Vec<_> = g.edges[0].iter().flatten().collect();
        assert_eq!(a_edges.len(), 1);
        assert_eq!(g.defs[*a_edges[0]].name, "b");
    }

    #[test]
    fn acquire_summary_propagates_with_chain() {
        let (g, s) = graph(
            "fn a(&self) {\n  self.b();\n}\nfn b(&self) {\n  self.c();\n}\nfn c(&self) {\n  let r = self.roles.read();\n}\n",
        );
        let a = g.defs.iter().position(|d| d.name == "a").unwrap();
        let info = &s[a].may_acquire[&0];
        assert_eq!(info.class, "roles");
        assert_eq!(info.chain.len(), 3);
        assert!(info.chain[0].contains("`a` calls `b`"));
        assert!(info.chain[2].contains("`c` acquires `roles`"));
    }

    #[test]
    fn block_summary_propagates() {
        let (g, s) =
            graph("fn a(&self) {\n  self.b();\n}\nfn b(&self) {\n  self.kv.put(k, v);\n}\n");
        let a = g.defs.iter().position(|d| d.name == "a").unwrap();
        let b = s[a].may_block.as_ref().unwrap();
        assert_eq!(b.what, "kv.put");
        assert_eq!(b.chain.len(), 2);
    }

    #[test]
    fn recursion_terminates() {
        let (g, s) = graph("fn a(&self) {\n  self.a();\n  let r = self.registry.lock();\n}\n");
        assert!(s[0].may_acquire.contains_key(&1));
        assert_eq!(g.defs.len(), 1);
    }

    #[test]
    fn test_functions_are_excluded() {
        let (g, _) = graph("fn live() {}\n#[cfg(test)]\nmod t {\n  fn helper() {}\n}\n");
        assert_eq!(g.defs.len(), 1);
    }
}
