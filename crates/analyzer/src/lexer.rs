//! A comment/string-aware line lexer for Rust sources.
//!
//! The analyzer does not need a full parser: every rule operates on
//! *code text with string/char contents blanked and comments split out*.
//! This module produces that view. The tricky cases are exactly the ones
//! that would make a naive `grep` lie: `"no .unwrap() here"` inside a
//! string, `unsafe` inside a doc comment, raw strings `r#"…"#` containing
//! quotes, nested block comments, and lifetimes (`'a`) that look like the
//! start of a char literal.

/// One source line, split into its code part and its comment part.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Line {
    /// The line's code with comments removed and string/char literal
    /// *contents* dropped (delimiters are kept, so `"abc"` becomes `""` —
    /// tokens on either side never merge).
    pub code: String,
    /// The line's comment text (line comments, doc comments, and any part
    /// of a block comment on this line), without the `//`/`/*` markers.
    pub comment: String,
}

impl Line {
    /// True if the line holds no code tokens (blank or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

#[derive(PartialEq)]
enum State {
    Code,
    /// Inside `/* … */`, tracking nesting depth (Rust block comments nest).
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string; the payload is the number of `#`s in the
    /// opening delimiter.
    RawStr(u32),
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src` into per-line code/comment views. Operates on bytes:
/// non-ASCII text only ever appears inside strings and comments, which are
/// carried over verbatim (comments) or dropped (string contents).
pub fn lex(src: &str) -> Vec<Line> {
    let b = src.as_bytes();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    // Line comment (incl. `///` and `//!`): runs to newline.
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\n' {
                        j += 1;
                    }
                    cur.comment.push_str(&src[i + 2..j]);
                    i = j;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::Block(1);
                    i += 2;
                } else if c == b'"' {
                    // A `"` opens either a plain string or — when directly
                    // preceded by `r`/`br` plus `#`s that are not part of a
                    // longer identifier — a raw string.
                    let mut k = i;
                    while k > 0 && b[k - 1] == b'#' {
                        k -= 1;
                    }
                    let hashes = (i - k) as u32;
                    let is_raw = k > 0
                        && b[k - 1] == b'r'
                        && !(k >= 2 && is_ident(b[k - 2]) && b[k - 2] != b'b')
                        && !(k >= 3 && b[k - 2] == b'b' && is_ident(b[k - 3]));
                    if is_raw {
                        // The `#`s were already pushed as code; drop them so
                        // the blanked literal reads `r""` regardless of the
                        // delimiter arity.
                        for _ in 0..hashes {
                            cur.code.pop();
                        }
                        state = State::RawStr(hashes);
                    } else {
                        state = State::Str;
                    }
                    cur.code.push('"');
                    i += 1;
                } else if c == b'\'' {
                    // Char literal vs lifetime/loop label. `'\…'` and `'x'`
                    // are literals; `'ident` with no closing quote is a
                    // lifetime. (After an identifier or `]`/`)`/`"` the `'`
                    // can't start a literal at all, but the cases below
                    // already classify correctly without that check.)
                    if b.get(i + 1) == Some(&b'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        if j < b.len() {
                            j += 1; // the escaped character itself
                        }
                        if b.get(i + 2) == Some(&b'u') {
                            while j < b.len() && b[j] != b'}' && b[j] != b'\n' {
                                j += 1;
                            }
                            j += 1;
                        }
                        while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
                            j += 1;
                        }
                        cur.code.push_str("''");
                        i = (j + 1).min(b.len());
                    } else if b.get(i + 2) == Some(&b'\'') {
                        // 'x'
                        cur.code.push_str("''");
                        i += 3;
                    } else {
                        // Lifetime or label: keep it as code verbatim.
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    // Keep code ASCII-only (non-ASCII identifiers become
                    // `?`): rules slice the code text by byte index, and
                    // no rule matches a non-ASCII token.
                    cur.code.push(if c.is_ascii() { c as char } else { '?' });
                    i += 1;
                }
            }
            State::Block(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::Block(depth + 1);
                    i += 2;
                } else {
                    // Byte-wise carry-over: non-ASCII bytes land as
                    // mojibake, which is fine — rules only match ASCII
                    // markers (`SAFETY:`, `lint:`) in comment text.
                    cur.comment.push(c as char);
                    i += 1;
                }
            }
            State::Str => {
                if c == b'\\' {
                    i += 2; // skip the escaped byte (incl. `\"` and `\\`)
                } else if c == b'"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' {
                    let end = i + 1 + hashes as usize;
                    if end <= b.len() && b[i + 1..end].iter().all(|&h| h == b'#') {
                        cur.code.push('"');
                        state = State::Code;
                        i = end;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// True if `needle` occurs in `hay` as a whole word (not embedded in a
/// longer identifier).
pub fn has_word(hay: &str, needle: &str) -> bool {
    let h = hay.as_bytes();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let start = from + p;
        let end = start + needle.len();
        let left_ok = start == 0 || !is_ident(h[start - 1]);
        let right_ok = end == h.len() || !is_ident(h[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked() {
        let lines = lex(r#"let x = "contains .unwrap() and unsafe";"#);
        assert_eq!(lines[0].code, r#"let x = "";"#);
        assert!(!lines[0].code.contains("unwrap"));
    }

    #[test]
    fn line_comments_are_split_out() {
        let lines = lex("let a = 1; // calls .lock() here\nlet b = 2;");
        assert_eq!(lines[0].code, "let a = 1; ");
        assert!(lines[0].comment.contains(".lock()"));
        assert_eq!(lines[1].code, "let b = 2;");
    }

    #[test]
    fn doc_comments_mentioning_unsafe_are_not_code() {
        let lines = lex("/// uses unsafe internally\nfn f() {}");
        assert!(lines[0].is_code_blank());
        assert!(lines[0].comment.contains("unsafe"));
        assert_eq!(lines[1].code, "fn f() {}");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\n unsafe here\n*/ c";
        let lines = lex(src);
        assert_eq!(lines[0].code, "a  b");
        assert!(lines[1].is_code_blank());
        assert!(lines[2].comment.contains("unsafe"));
        assert_eq!(lines[3].code, " c");
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r###"let s = r#"quote " and .lock() inside"#; let t = 1;"###;
        let lines = lex(src);
        assert_eq!(lines[0].code, r#"let s = r""; let t = 1;"#);
    }

    #[test]
    fn raw_string_marker_not_confused_with_identifier_tail() {
        // `writer"x"` — the `r` belongs to the identifier, the string is
        // plain, and the closing quote really closes it.
        let lines = lex(r#"writer"x".push(1);"#);
        assert_eq!(lines[0].code, r#"writer"".push(1);"#);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(code_of(r#"let x = b"ab\"cd";"#)[0], r#"let x = b"";"#);
        assert_eq!(code_of(r##"let x = br#"a"b"#;"##)[0], r#"let x = br"";"#);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        assert_eq!(code_of("let c = 'x';")[0], "let c = '';");
        assert_eq!(code_of(r"let c = '\n';")[0], "let c = '';");
        assert_eq!(code_of(r"let c = '\u{1F600}';")[0], "let c = '';");
        assert_eq!(
            code_of("fn f<'a>(x: &'a str) {}")[0],
            "fn f<'a>(x: &'a str) {}"
        );
        assert_eq!(
            code_of("'outer: loop { break 'outer; }")[0],
            "'outer: loop { break 'outer; }"
        );
        // A quote char literal.
        assert_eq!(code_of(r"let q = '\'';")[0], "let q = '';");
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        assert_eq!(code_of(r#"let s = "a\"b.unwrap()";"#)[0], r#"let s = "";"#);
    }

    #[test]
    fn strings_containing_comment_markers_stay_strings() {
        assert_eq!(
            code_of(r#"let s = "// not a comment";"#)[0],
            r#"let s = "";"#
        );
        let lines = lex(r#"let s = "/* not open"; real();"#);
        assert_eq!(lines[0].code, r#"let s = ""; real();"#);
    }

    #[test]
    fn comments_containing_quotes_stay_comments() {
        let lines = lex(r#"f(); // a stray " quote
g();"#);
        assert_eq!(lines[0].code, "f(); ");
        assert_eq!(lines[1].code, "g();");
    }

    #[test]
    fn has_word_respects_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("unsafe_fn()", "unsafe"));
        assert!(!has_word("not_unsafe", "unsafe"));
        assert!(has_word("x unsafe", "unsafe"));
    }
}
