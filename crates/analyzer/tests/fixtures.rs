//! Seeded-fixture corpus: one deliberately broken file per
//! interprocedural rule, asserted to produce *exactly* the expected
//! diagnostic — message, line, and full witness chain — plus one clean
//! file pinning the multi-line `lint: allow` span fix. The fixtures live
//! under `tests/fixtures/` (never compiled, never seen by the live
//! workspace gate) with their own minimal `policy.toml`.

use std::fs;
use std::path::PathBuf;

use timecrypt_analyzer::scan::SourceFile;
use timecrypt_analyzer::{config, rules, Violation};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Analyzes one fixture file in isolation under the fixture policy.
fn analyze(name: &str) -> Vec<Violation> {
    let policy = fs::read_to_string(fixtures_dir().join("policy.toml")).expect("policy.toml");
    let cfg = config::parse(&policy).expect("fixture policy parses");
    let src = fs::read_to_string(fixtures_dir().join(name)).expect("fixture source");
    let file = SourceFile::parse(name, "fx", &src);
    rules::run_all(&cfg, &[file])
}

#[test]
fn cross_function_inversion_depth3_reports_the_full_chain() {
    let v = analyze("inversion_depth3.rs");
    assert_eq!(v.len(), 1, "expected exactly one diagnostic, got: {v:#?}");
    let v = &v[0];
    assert_eq!(v.rule, "lock-ordering");
    assert_eq!(v.line, 11);
    assert_eq!(
        v.msg,
        "calling `rebalance` may acquire `registry` while holding `stripe` \
         — documented order is registry → stripe"
    );
    assert_eq!(
        v.chain,
        vec![
            "`evict` holds `stripe` and calls `rebalance` (inversion_depth3.rs:11)",
            "`rebalance` calls `reindex` (inversion_depth3.rs:16)",
            "`reindex` acquires `registry` (inversion_depth3.rs:20)",
        ]
    );
}

#[test]
fn blocking_call_depth2_reports_the_full_chain() {
    let v = analyze("blocking_depth2.rs");
    assert_eq!(v.len(), 1, "expected exactly one diagnostic, got: {v:#?}");
    let v = &v[0];
    assert_eq!(v.rule, "blocking-under-lock");
    assert_eq!(v.line, 12);
    assert_eq!(
        v.msg,
        "calling `persist_meta` may block on `kv.put` while holding `registry`"
    );
    assert_eq!(
        v.chain,
        vec![
            "`register` holds `registry` and calls `persist_meta` (blocking_depth2.rs:12)",
            "`persist_meta` blocks on `kv.put` (blocking_depth2.rs:16)",
        ]
    );
}

#[test]
fn misordered_publish_pair_flags_the_relaxed_load_only() {
    let v = analyze("atomics_pair.rs");
    assert_eq!(v.len(), 1, "expected exactly one diagnostic, got: {v:#?}");
    let v = &v[0];
    assert_eq!(v.rule, "atomics-ordering");
    assert_eq!(
        v.line, 15,
        "the Release store on line 11 is correct; only the Relaxed load fires"
    );
    assert_eq!(
        v.msg,
        "`cache_gen` is a publish atomic (loads Acquire, stores Release, RMWs AcqRel) \
         — found `load` with Ordering::Relaxed"
    );
    assert!(v.chain.is_empty(), "atomics findings are local");
}

#[test]
fn allow_directive_covers_multiline_statement() {
    let v = analyze("multiline_allow.rs");
    assert!(
        v.is_empty(),
        "directive above the statement must reach the chained `.lock()` two lines down, got: {v:#?}"
    );
}
