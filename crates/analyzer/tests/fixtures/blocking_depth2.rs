//! Seeded blocking-under-lock at call depth 2: `register` holds the
//! registry lock across a helper that writes the durable meta record.
//! The store I/O itself is fine — the lock held two frames above it is
//! the bug.

pub struct Engine;

impl Engine {
    pub fn register(&self) {
        let mut reg = self.registry.lock();
        reg.insert(1);
        self.persist_meta();
    }

    fn persist_meta(&self) {
        self.kv.put(b"sm/1", b"meta");
    }
}
