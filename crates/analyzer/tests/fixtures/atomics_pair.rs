//! Seeded mis-ordered publication pair: the writer publishes the new
//! generation with `Release`, but the reader loads it `Relaxed` — so a
//! reader can observe the bumped generation without the writes it was
//! supposed to publish. This is the silent bug class the `publish` role
//! exists for.

pub struct Cache;

impl Cache {
    pub fn publish(&self) {
        self.cache_gen.store(1, Ordering::Release);
    }

    pub fn read_side(&self) -> u64 {
        self.cache_gen.load(Ordering::Relaxed)
    }
}
