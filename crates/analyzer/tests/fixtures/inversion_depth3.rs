//! Seeded lock-ordering inversion across a depth-3 call chain: `evict`
//! holds the inner `stripe` class while the chain below it re-enters the
//! outer `registry` class. No single function is wrong on its own — only
//! the interprocedural summary sees it.

pub struct Engine;

impl Engine {
    pub fn evict(&self) {
        let s = self.stripe.lock();
        self.rebalance();
        drop(s);
    }

    fn rebalance(&self) {
        self.reindex();
    }

    fn reindex(&self) {
        let mut reg = self.registry.lock();
        reg.touch();
    }
}
