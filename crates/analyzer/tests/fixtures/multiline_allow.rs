//! Regression fixture: a `lint: allow(...)` directive above a statement
//! must cover the statement's *entire* span, including rustfmt'd
//! continuation lines — the acquisition below happens two lines after
//! the directive. Expected: clean.

pub struct Engine;

impl Engine {
    pub fn sweep(&self) {
        let s = self.stripe.lock();
        // lint: allow(lock-ordering) — fixture: intentional inversion on a quiesced path; the directive must reach the chained `.lock()` two lines down
        let r = self
            .registry
            .lock();
        drop(r);
        drop(s);
    }
}
