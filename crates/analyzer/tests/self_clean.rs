//! The analyzer's own acceptance gate: the live workspace must be clean.
//!
//! This is the same check CI runs via the `timecrypt-analyzer` binary, but
//! wired into `cargo test` so a violation introduced alongside a code change
//! fails the ordinary test run too — not just the dedicated CI step.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/analyzer -> crates -> workspace root.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    assert!(
        dir.join("analyzer.toml").is_file(),
        "workspace root not found from CARGO_MANIFEST_DIR"
    );
    dir
}

/// The interprocedural layer (call graph + fixpoint summaries) must not
/// blow the gate's latency budget: CI runs the binary under `timeout 5`,
/// and the release build finishes in well under 100ms. 2s of headroom
/// here keeps the unoptimized `cargo test` run honest without being
/// flaky on slow machines.
#[test]
fn full_workspace_analysis_stays_within_budget() {
    let start = std::time::Instant::now();
    let report = timecrypt_analyzer::analyze(&workspace_root()).expect("analysis runs");
    let elapsed = start.elapsed();
    assert!(report.files > 0);
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "full-workspace analysis took {elapsed:?} — budget is 2s"
    );
}

#[test]
fn live_workspace_is_clean() {
    let report = timecrypt_analyzer::analyze(&workspace_root()).expect("analysis runs");
    assert!(
        report.files > 0,
        "analyzer found no source files — collection is broken"
    );
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has {} violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
