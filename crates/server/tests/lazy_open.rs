//! Lazy-open regression: opening an engine over a store with 10k streams
//! must cost one directory scan — not one tree open per stream — and the
//! store reads after open must scale with the streams *touched*, not the
//! streams stored.

use std::sync::Arc;
use timecrypt_server::{ServerConfig, TimeCryptServer};
use timecrypt_store::{KvStore, MemKv, MeteredKv};

const STORED: u128 = 10_000;

#[test]
fn open_cost_scales_with_touched_streams_not_stored() {
    let base: Arc<dyn KvStore> = Arc::new(MemKv::new());
    {
        let seeder = TimeCryptServer::open(base.clone(), ServerConfig::default()).unwrap();
        for s in 1..=STORED {
            seeder.create_stream(s, 0, 10_000, 2).unwrap();
        }
    }
    let metered = Arc::new(MeteredKv::new(base));
    let shared: Arc<dyn KvStore> = metered.clone();
    let before = metered.counters();
    let engine = TimeCryptServer::open(
        shared,
        ServerConfig {
            max_resident_streams: Some(64),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let opened = metered.counters();
    assert_eq!(
        opened.scans - before.scans,
        1,
        "open is one directory scan, not per-stream recovery"
    );
    assert_eq!(opened.gets - before.gets, 0, "open performs no point reads");
    assert_eq!(engine.stream_count() as u128, STORED);
    assert_eq!(engine.residency().resident, 0, "nothing hydrated yet");

    // Touch 3 of the 10k streams; reads must stay a small constant per
    // touched stream (tree-length get + ledger scan), nowhere near the
    // stored stream count.
    for s in [17u128, 4_242, 9_999] {
        engine.stream_stat(s, 0, 100_000).unwrap();
    }
    let touched = metered.counters();
    let reads = (touched.gets - opened.gets) + (touched.scans - opened.scans);
    assert!(
        reads <= 12,
        "touching 3 of {STORED} streams cost {reads} store reads"
    );
    let residency = engine.residency();
    assert_eq!(residency.resident, 3);
    assert_eq!(residency.hydrations, 3);
}
