//! Concurrency tests for the hydration seam: single-flight (N threads
//! slamming one cold stream replay the store exactly once) and
//! evict-vs-read races (a reader holding the stream's `Arc` survives
//! eviction and answers exactly).

use std::sync::{Arc, Barrier};
use timecrypt_chunk::{DataPoint, DigestSchema, PlainChunk, StreamConfig};
use timecrypt_core::StreamKeyMaterial;
use timecrypt_crypto::{PrgKind, SecureRandom};
use timecrypt_server::{ServerConfig, TimeCryptServer};
use timecrypt_store::{KvStore, MemKv, MeteredKv};

const DELTA_MS: u64 = 10_000;

fn ingest(engine: &TimeCryptServer, stream: u128, chunks: u64) {
    let cfg = StreamConfig {
        schema: DigestSchema::sum_count(),
        ..StreamConfig::new(stream, "m", 0, DELTA_MS)
    };
    let km = StreamKeyMaterial::with_params(stream, [stream as u8; 16], 20, PrgKind::Aes).unwrap();
    let mut rng = SecureRandom::from_seed_insecure(stream as u64);
    engine.create_stream(stream, 0, DELTA_MS, 2).unwrap();
    for index in 0..chunks {
        let sealed = PlainChunk {
            stream,
            index,
            points: vec![DataPoint::new(
                index as i64 * DELTA_MS as i64,
                index as i64 + 1,
            )],
        }
        .seal(&cfg, &km, &mut rng)
        .unwrap();
        engine.insert(&sealed).unwrap();
    }
}

#[test]
fn concurrent_cold_touch_replays_the_store_once() {
    // Seed a store, then reopen it cold behind a metered wrapper: the
    // ledger-rebuild scan is the hydration fingerprint (queries only
    // `get`), so the scan delta counts store replays exactly.
    let base: Arc<dyn KvStore> = Arc::new(MemKv::new());
    {
        let seeder = TimeCryptServer::open(base.clone(), ServerConfig::default()).unwrap();
        ingest(&seeder, 1, 6);
    }
    let metered = Arc::new(MeteredKv::new(base));
    let shared: Arc<dyn KvStore> = metered.clone();
    let engine = Arc::new(
        TimeCryptServer::open(
            shared,
            ServerConfig {
                max_resident_streams: Some(4),
                ..ServerConfig::default()
            },
        )
        .unwrap(),
    );
    let before = metered.counters();
    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    let replies: Vec<_> = (0..threads)
        .map(|_| {
            let engine = engine.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                engine.stream_stat(1, 0, 6 * DELTA_MS as i64).unwrap()
            })
        })
        .collect();
    let replies: Vec<_> = replies.into_iter().map(|t| t.join().unwrap()).collect();
    for r in &replies[1..] {
        assert_eq!(r, &replies[0], "racing cold reads diverged");
    }
    let after = metered.counters();
    assert_eq!(
        after.scans - before.scans,
        1,
        "exactly one ledger replay for {threads} racing cold touches"
    );
    let residency = engine.residency();
    assert_eq!(residency.hydrations, 1, "exactly one hydration counted");
    assert_eq!(residency.resident, 1);
}

#[test]
fn reader_holding_the_stream_survives_eviction() {
    // One thread hammers queries on stream 1 while another alternates
    // touching stream 2 (displacing 1 from the cap-1 LRU) and force
    // sweeping. Every reply must stay exact: a reader that grabbed the
    // stream's Arc before an eviction finishes against it unharmed, and
    // the next touch rehydrates.
    let engine = Arc::new(
        TimeCryptServer::open(
            Arc::new(MemKv::new()),
            ServerConfig {
                max_resident_streams: Some(1),
                ..ServerConfig::default()
            },
        )
        .unwrap(),
    );
    ingest(&engine, 1, 4);
    ingest(&engine, 2, 4);
    let expected = engine.stream_stat(1, 0, 4 * DELTA_MS as i64).unwrap();
    let expected_other = engine.stream_stat(2, 0, 4 * DELTA_MS as i64).unwrap();
    let iterations = 400;
    let reader = {
        let engine = engine.clone();
        let expected = expected.clone();
        std::thread::spawn(move || {
            for i in 0..iterations {
                let got = engine.stream_stat(1, 0, 4 * DELTA_MS as i64).unwrap();
                assert_eq!(got, expected, "reader saw a wrong reply at iteration {i}");
            }
        })
    };
    let evictor = {
        let engine = engine.clone();
        std::thread::spawn(move || {
            for i in 0..iterations {
                let got = engine.stream_stat(2, 0, 4 * DELTA_MS as i64).unwrap();
                assert_eq!(got, expected_other, "evictor saw a wrong reply at {i}");
                engine.evict_idle_streams();
            }
        })
    };
    reader.join().unwrap();
    evictor.join().unwrap();
    let residency = engine.residency();
    assert!(
        residency.evictions > 0,
        "the race never evicted anything — sweep not exercised"
    );
    assert!(residency.resident <= 1, "cap of 1 violated");
}
