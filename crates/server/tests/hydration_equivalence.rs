//! Equivalence battery for lazy hydration: a capped engine (resident
//! LRU of 1 — every touch of a second stream evicts the first) must be
//! observationally identical to an uncapped one. Arbitrary interleavings
//! of insert / query / delete-range / evict over several streams are
//! driven through the wire `Handler`, and every reply is compared
//! byte-for-byte; at the end the two KV stores must be byte-identical
//! too, so hydration and eviction leave no residue in persistent state.

use proptest::prelude::*;
use std::sync::Arc;
use timecrypt_chunk::{DataPoint, DigestSchema, PlainChunk, StreamConfig};
use timecrypt_core::StreamKeyMaterial;
use timecrypt_crypto::{PrgKind, SecureRandom};
use timecrypt_server::{ServerConfig, TimeCryptServer};
use timecrypt_store::{KvStore, MemKv};
use timecrypt_wire::messages::Request;
use timecrypt_wire::transport::Handler;

const STREAMS: [u128; 3] = [1, 2, 3];
const DELTA_MS: u64 = 10_000;

/// One step of the interleaving. Stream and timestamps are small indices
/// mapped onto the fixed stream set / chunk grid by the driver.
#[derive(Debug, Clone)]
enum Op {
    /// Seal and insert the next in-order chunk of stream `STREAMS[s]`.
    Insert { s: usize, value: i64 },
    /// Statistical range query over a subset of streams.
    Stat { mask: usize, lo: usize, hi: usize },
    /// Raw chunk range query on one stream.
    Range { s: usize, lo: usize, hi: usize },
    /// Delete a chunk-aligned range on one stream.
    Delete { s: usize, lo: usize, hi: usize },
    /// Force-evict everything idle from both engines.
    Evict,
    /// Stream metadata probe (hydration-free path).
    Info { s: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, -50i64..50).prop_map(|(s, value)| Op::Insert { s, value }),
        (1usize..8, 0usize..6, 0usize..6).prop_map(|(mask, lo, hi)| Op::Stat { mask, lo, hi }),
        (0usize..3, 0usize..6, 0usize..6).prop_map(|(s, lo, hi)| Op::Range { s, lo, hi }),
        (0usize..3, 0usize..6, 0usize..6).prop_map(|(s, lo, hi)| Op::Delete { s, lo, hi }),
        Just(Op::Evict),
        (0usize..3).prop_map(|s| Op::Info { s }),
    ]
}

fn seal(stream: u128, index: u64, value: i64) -> Vec<u8> {
    let cfg = StreamConfig {
        schema: DigestSchema::sum_count(),
        ..StreamConfig::new(stream, "m", 0, DELTA_MS)
    };
    let km = StreamKeyMaterial::with_params(stream, [stream as u8; 16], 20, PrgKind::Aes).unwrap();
    // Deterministic nonce stream per (stream, index) so both engines
    // receive the same ciphertext bytes.
    let mut rng = SecureRandom::from_seed_insecure(stream as u64 * 1000 + index);
    PlainChunk {
        stream,
        index,
        points: vec![DataPoint::new(index as i64 * DELTA_MS as i64, value)],
    }
    .seal(&cfg, &km, &mut rng)
    .unwrap()
    .to_bytes()
}

fn dump(kv: &dyn KvStore) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut all = kv.scan_prefix(b"").unwrap();
    all.sort();
    all
}

/// Applies `ops` to a capped and an uncapped engine, asserting
/// byte-identical replies throughout and byte-identical stores at the
/// end. With `evict_every_op`, the capped engine is additionally swept
/// after every single step, so each next touch is a cold rehydration.
fn run_equivalence(ops: &[Op], evict_every_op: bool) {
    let kv_capped: Arc<dyn KvStore> = Arc::new(MemKv::new());
    let kv_uncapped: Arc<dyn KvStore> = Arc::new(MemKv::new());
    let capped = TimeCryptServer::open(
        kv_capped.clone(),
        ServerConfig {
            max_resident_streams: Some(1),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let uncapped = TimeCryptServer::open(kv_uncapped.clone(), ServerConfig::default()).unwrap();
    for engine in [&capped, &uncapped] {
        for &s in &STREAMS {
            engine.create_stream(s, 0, DELTA_MS, 2).unwrap();
        }
    }
    let mut next_index = [0u64; 3];
    let ts = |i: usize| i as i64 * DELTA_MS as i64;
    for (step, op) in ops.iter().enumerate() {
        let req = match *op {
            Op::Insert { s, value } => {
                let chunk = seal(STREAMS[s], next_index[s], value);
                next_index[s] += 1;
                Some(Request::Insert { chunk })
            }
            Op::Stat { mask, lo, hi } => Some(Request::GetStatRange {
                streams: STREAMS
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &s)| s)
                    .collect(),
                ts_s: ts(lo.min(hi)),
                ts_e: ts(lo.max(hi) + 1),
            }),
            Op::Range { s, lo, hi } => Some(Request::GetRange {
                stream: STREAMS[s],
                ts_s: ts(lo.min(hi)),
                ts_e: ts(lo.max(hi) + 1),
            }),
            Op::Delete { s, lo, hi } => Some(Request::DeleteRange {
                stream: STREAMS[s],
                ts_s: ts(lo.min(hi)),
                ts_e: ts(lo.max(hi) + 1),
            }),
            Op::Info { s } => Some(Request::StreamInfo { stream: STREAMS[s] }),
            Op::Evict => {
                capped.evict_idle_streams();
                uncapped.evict_idle_streams();
                None
            }
        };
        if let Some(req) = req {
            let a = capped.handle(req.clone()).encode();
            let b = uncapped.handle(req).encode();
            assert_eq!(a, b, "reply diverged at step {step} ({op:?})");
        }
        if evict_every_op {
            capped.evict_idle_streams();
        }
    }
    assert_eq!(
        dump(kv_capped.as_ref()),
        dump(kv_uncapped.as_ref()),
        "stores diverged after {} ops",
        ops.len()
    );
    let residency = capped.residency();
    assert!(
        residency.resident <= 1,
        "cap of 1 violated: {} resident",
        residency.resident
    );
}

proptest! {
    /// Capped (LRU of 1) vs uncapped: byte-identical replies and stores
    /// for arbitrary op interleavings.
    #[test]
    fn capped_engine_is_observationally_identical(
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        run_equivalence(&ops, false);
    }

    /// Same battery, but the capped engine is force-evicted after every
    /// op — every touch is a cold rehydration from the store.
    #[test]
    fn forced_eviction_then_rehydrate_is_identical(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        run_equivalence(&ops, true);
    }
}
