//! Server-side key store: opaque grant blobs and resolution envelopes.
//!
//! "Access tokens are encrypted with the principal's public key (hybrid
//! encryption) and stored at the server's key-store" (§3.2). The server
//! treats all of this as bytes; it cannot open grants or envelopes.

use timecrypt_store::{KvStore, StoreError};

/// Key-store facade over the shared KV.
pub struct KeyStore<'a> {
    kv: &'a dyn KvStore,
}

impl<'a> KeyStore<'a> {
    /// Wraps the server's KV store.
    pub fn new(kv: &'a dyn KvStore) -> Self {
        KeyStore { kv }
    }

    fn grant_prefix(stream: u128, principal: &str) -> Vec<u8> {
        let mut k = Vec::with_capacity(24 + principal.len());
        k.extend_from_slice(b"g/");
        k.extend_from_slice(&stream.to_be_bytes());
        k.push(b'/');
        k.extend_from_slice(principal.as_bytes());
        k.push(b'/');
        k
    }

    /// Appends a grant blob for `(stream, principal)`. Grants accumulate;
    /// each carries its own scope inside the sealed bytes.
    pub fn put_grant(&self, stream: u128, principal: &str, blob: &[u8]) -> Result<(), StoreError> {
        let prefix = Self::grant_prefix(stream, principal);
        let seq = self.kv.scan_prefix(&prefix)?.len() as u64;
        let mut key = prefix;
        key.extend_from_slice(&seq.to_be_bytes());
        self.kv.put(&key, blob)
    }

    /// All grant blobs for `(stream, principal)` in insertion order.
    pub fn get_grants(&self, stream: u128, principal: &str) -> Result<Vec<Vec<u8>>, StoreError> {
        let mut hits = self
            .kv
            .scan_prefix(&Self::grant_prefix(stream, principal))?;
        hits.sort();
        Ok(hits.into_iter().map(|(_, v)| v).collect())
    }

    /// Drops a principal's grant blobs (revocation bookkeeping; the
    /// cryptographic revocation is the owner ceasing to extend tokens —
    /// already-downloaded old-data keys remain usable, §3.3).
    pub fn revoke_grants(&self, stream: u128, principal: &str) -> Result<usize, StoreError> {
        let hits = self
            .kv
            .scan_prefix(&Self::grant_prefix(stream, principal))?;
        let n = hits.len();
        for (k, _) in hits {
            self.kv.delete(&k)?;
        }
        Ok(n)
    }

    fn env_key(stream: u128, resolution: u64, index: u64) -> Vec<u8> {
        let mut k = Vec::with_capacity(36);
        k.extend_from_slice(b"e/");
        k.extend_from_slice(&stream.to_be_bytes());
        k.push(b'/');
        k.extend_from_slice(&resolution.to_be_bytes());
        k.push(b'/');
        k.extend_from_slice(&index.to_be_bytes());
        k
    }

    /// Stores resolution envelopes.
    pub fn put_envelopes(
        &self,
        stream: u128,
        resolution: u64,
        envelopes: &[(u64, Vec<u8>)],
    ) -> Result<(), StoreError> {
        for (index, blob) in envelopes {
            self.kv
                .put(&Self::env_key(stream, resolution, *index), blob)?;
        }
        Ok(())
    }

    /// Fetches envelopes `lo..=hi` (missing indices are skipped).
    pub fn get_envelopes(
        &self,
        stream: u128,
        resolution: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        let mut out = Vec::new();
        for i in lo..=hi {
            if let Some(v) = self.kv.get(&Self::env_key(stream, resolution, i))? {
                out.push((i, v));
            }
        }
        Ok(out)
    }

    /// Deletes everything key-store-related for a stream (stream deletion).
    pub fn purge_stream(&self, stream: u128) -> Result<(), StoreError> {
        for prefix in [b"g/".as_slice(), b"e/".as_slice()] {
            let mut p = prefix.to_vec();
            p.extend_from_slice(&stream.to_be_bytes());
            for (k, _) in self.kv.scan_prefix(&p)? {
                self.kv.delete(&k)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timecrypt_store::MemKv;

    #[test]
    fn grants_accumulate_in_order() {
        let kv = MemKv::new();
        let ks = KeyStore::new(&kv);
        ks.put_grant(1, "alice", b"g0").unwrap();
        ks.put_grant(1, "alice", b"g1").unwrap();
        ks.put_grant(1, "bob", b"h0").unwrap();
        assert_eq!(
            ks.get_grants(1, "alice").unwrap(),
            vec![b"g0".to_vec(), b"g1".to_vec()]
        );
        assert_eq!(ks.get_grants(1, "bob").unwrap(), vec![b"h0".to_vec()]);
        assert_eq!(ks.get_grants(2, "alice").unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn revocation_clears_grants() {
        let kv = MemKv::new();
        let ks = KeyStore::new(&kv);
        ks.put_grant(1, "alice", b"g0").unwrap();
        ks.put_grant(1, "alice", b"g1").unwrap();
        assert_eq!(ks.revoke_grants(1, "alice").unwrap(), 2);
        assert!(ks.get_grants(1, "alice").unwrap().is_empty());
    }

    #[test]
    fn envelope_window_fetch() {
        let kv = MemKv::new();
        let ks = KeyStore::new(&kv);
        let envs: Vec<(u64, Vec<u8>)> = (0..10u64).map(|i| (i, vec![i as u8])).collect();
        ks.put_envelopes(1, 6, &envs).unwrap();
        let got = ks.get_envelopes(1, 6, 3, 7).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0], (3, vec![3u8]));
        // Different resolution is a different namespace.
        assert!(ks.get_envelopes(1, 12, 0, 9).unwrap().is_empty());
    }

    #[test]
    fn purge_removes_stream_material() {
        let kv = MemKv::new();
        let ks = KeyStore::new(&kv);
        ks.put_grant(1, "alice", b"g0").unwrap();
        ks.put_envelopes(1, 6, &[(0, vec![1])]).unwrap();
        ks.put_grant(2, "alice", b"other").unwrap();
        ks.purge_stream(1).unwrap();
        assert!(ks.get_grants(1, "alice").unwrap().is_empty());
        assert!(ks.get_envelopes(1, 6, 0, 10).unwrap().is_empty());
        assert_eq!(ks.get_grants(2, "alice").unwrap().len(), 1);
    }
}
