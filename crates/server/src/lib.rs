//! The TimeCrypt server engine (paper §3.2, §4.5, §4.6).
//!
//! The server is *untrusted*: it stores sealed chunks, maintains the
//! encrypted aggregation index over HEAC digest ciphertexts, serves
//! statistical and raw range queries, and hosts the key store of opaque
//! grant blobs and resolution envelopes. It never holds a key and never
//! sees a plaintext value — every operation below works on ciphertext.
//!
//! Instances are stateless apart from the KV store behind them ("TimeCrypt
//! instances are stateless and therefore horizontally scalable", §3.2):
//! [`TimeCryptServer::open`] rebuilds all in-memory stream state from the
//! store.
//!
//! # Locking model
//!
//! The engine splits each stream's state so the read path never waits on
//! the write path (§6 sells low-latency queries *concurrent with*
//! sustained ingest):
//!
//! * **Exclusive (per-stream ingest mutex):** `insert`, `rollup`, and
//!   `delete_range`. Writers serialize against each other only.
//! * **Shared, lock-free:** `stream_stat` / `get_stat_range`, `get_range`,
//!   `stream_info`, and `insert_live`'s staleness check — these read the
//!   immutable stream metadata and query the aggregation tree against an
//!   atomically published chunk-count snapshot
//!   (see `timecrypt_index::tree` for the exactness argument).
//! * **Shared (ledger read lock):** `get_range_proof` and
//!   `get_verified_range`. Proof builders run concurrently; an in-flight
//!   insert excludes them only for its single ledger push.
//!
//! **Snapshot semantics:** a query observes the chunk prefix `[0, len)`
//! published when it began; a chunk whose insert races the query appears
//! in replies that start after the insert's length publication. Replies
//! are always exact for the prefix they report. Fine-grained queries into
//! a region aged out by `rollup` surface [`ServerError::RangeDecayed`]
//! (distinct from corruption).

pub mod engine;
pub mod keystore;

pub use engine::{
    merge_stream_stats, ServerConfig, ServerError, StreamStat, TimeCryptServer, EXPORT_PAGE_BYTES,
};
