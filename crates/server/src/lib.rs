//! The TimeCrypt server engine (paper §3.2, §4.5, §4.6).
//!
//! The server is *untrusted*: it stores sealed chunks, maintains the
//! encrypted aggregation index over HEAC digest ciphertexts, serves
//! statistical and raw range queries, and hosts the key store of opaque
//! grant blobs and resolution envelopes. It never holds a key and never
//! sees a plaintext value — every operation below works on ciphertext.
//!
//! Instances are stateless apart from the KV store behind them ("TimeCrypt
//! instances are stateless and therefore horizontally scalable", §3.2):
//! [`TimeCryptServer::open`] builds a stream *directory* from the store
//! in one scan and rehydrates each stream's heavy state (tree handle,
//! integrity ledger) lazily on first touch, behind a resident LRU bounded
//! by [`ServerConfig::max_resident_streams`] — so open time and resident
//! RAM scale with the streams actually used, not the streams stored (see
//! the `engine` module docs for the hydration state machine).
//!
//! # Locking model
//!
//! The engine splits each stream's state so the read path never waits on
//! the write path (§6 sells low-latency queries *concurrent with*
//! sustained ingest):
//!
//! * **Exclusive (per-stream ingest mutex):** `insert`, `rollup`, and
//!   `delete_range`. Writers serialize against each other only.
//! * **Registry mutex (short critical sections):** every operation's
//!   stream lookup — a resident hit is a map probe plus a recency bump;
//!   cold-touch hydration replays the store *outside* this lock, holding
//!   only the stream's single-flight hydration gate (lock class
//!   `hydrate`, ordered before `registry`).
//! * **Shared, lock-free:** `stream_stat` / `get_stat_range`, `get_range`,
//!   `stream_info`, and `insert_live`'s staleness check — these read the
//!   immutable stream metadata and query the aggregation tree against an
//!   atomically published chunk-count snapshot
//!   (see `timecrypt_index::tree` for the exactness argument).
//! * **Shared (ledger read lock):** `get_range_proof` and
//!   `get_verified_range`. Proof builders run concurrently; an in-flight
//!   insert excludes them only for its single ledger push.
//!
//! **Snapshot semantics:** a query observes the chunk prefix `[0, len)`
//! published when it began; a chunk whose insert races the query appears
//! in replies that start after the insert's length publication. Replies
//! are always exact for the prefix they report. Fine-grained queries into
//! a region aged out by `rollup` surface [`ServerError::RangeDecayed`]
//! (distinct from corruption).

pub mod engine;
pub mod keystore;

pub use engine::{
    merge_stream_stats, ResidencyStats, ServerConfig, ServerError, StreamStat, TimeCryptServer,
    EXPORT_PAGE_BYTES,
};
