//! The TimeCrypt server engine (paper §3.2, §4.5, §4.6).
//!
//! The server is *untrusted*: it stores sealed chunks, maintains the
//! encrypted aggregation index over HEAC digest ciphertexts, serves
//! statistical and raw range queries, and hosts the key store of opaque
//! grant blobs and resolution envelopes. It never holds a key and never
//! sees a plaintext value — every operation below works on ciphertext.
//!
//! Instances are stateless apart from the KV store behind them ("TimeCrypt
//! instances are stateless and therefore horizontally scalable", §3.2):
//! [`TimeCryptServer::open`] rebuilds all in-memory stream state from the
//! store.

pub mod engine;
pub mod keystore;

pub use engine::{merge_stream_stats, ServerConfig, ServerError, StreamStat, TimeCryptServer};
