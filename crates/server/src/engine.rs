//! The server engine: stream directory, lazy-hydrated stream state,
//! ingest path, query engine.
//!
//! # Stream lifecycle (lazy hydration)
//!
//! The engine never keeps every stream's state in memory. Opening a store
//! builds only a *directory* — one small metadata record per registered
//! stream — so open time is O(streams' meta records), not O(history).
//! A stream's heavy state (`StreamState`: tree handle, replayed integrity
//! ledger, ingest mutex) is *hydrated* from the store on first touch and
//! parked in a recency-ordered resident set bounded by
//! [`ServerConfig::max_resident_streams`]. Hydration is single-flight:
//! concurrent cold touches of one stream replay the store exactly once
//! (the winner holds the stream's hydration gate; losers queue on it and
//! then take the resident hit). Eviction only removes a resident entry
//! whose `Arc` has no in-flight references, so an operation holding a
//! handle keeps using it safely even after the stream leaves the resident
//! set — and no stream ever has two live `StreamState`s (which would
//! split its ingest mutex). See ARCHITECTURE.md "Stream lifecycle".

use crate::keystore::KeyStore;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use timecrypt_chunk::serialize::{ChunkRef, EncryptedChunk, SealedRecord};
use timecrypt_index::{stored_chunk_count, AggTree, IndexError, TreeConfig};
use timecrypt_integrity::{chunk_commitment, RootAttestation, StreamLedger};
use timecrypt_obs::trace;
use timecrypt_store::{KvStore, StoreError};
use timecrypt_wire::messages::{Request, RequestRef, Response, StatReply, StreamInfoWire};
use timecrypt_wire::transport::Handler;

/// Server-side tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Aggregation-tree fan-out (paper: 64).
    pub arity: usize,
    /// Per-stream index-node cache budget in bytes (Fig. 7 "small cache"
    /// sets this to 1 MB).
    pub cache_bytes: usize,
    /// Recurse the two partial edges of one deep index query in parallel
    /// (see `timecrypt_index::TreeConfig::parallel_edges`). On by
    /// default; the `deep_tree` bench phase disables it to measure the
    /// sequential baseline.
    pub parallel_query: bool,
    /// Upper bound on hydrated stream states held resident at once
    /// (`None` = unbounded, the compatibility default). When the resident
    /// set exceeds the cap, the coldest streams with no in-flight
    /// references are evicted; their state rehydrates from the store on
    /// the next touch. The stream *directory* (ids + registration
    /// metadata) is never evicted.
    pub max_resident_streams: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            arity: 64,
            cache_bytes: 64 * 1024 * 1024,
            parallel_query: true,
            max_resident_streams: None,
        }
    }
}

/// Byte budget of one [`TimeCryptServer::export_chunks`] page: a replica
/// rebuild ships each page as one `Response::StreamChunks` frame, so the
/// page must stay far below the transport's 16 MiB frame cap. 4 MiB leaves
/// a 4× margin for framing overhead, matching the ingest drain budget.
pub const EXPORT_PAGE_BYTES: usize = 4 * 1024 * 1024;

/// Engine errors (mapped to `Response::Error` strings at the wire boundary).
#[derive(Debug)]
pub enum ServerError {
    /// Unknown stream id.
    NoSuchStream(u128),
    /// Stream already exists.
    StreamExists(u128),
    /// Chunk arrived out of order (must be exactly the next index).
    OutOfOrderChunk {
        /// Expected next index.
        expected: u64,
        /// Received index.
        got: u64,
    },
    /// Digest width mismatch vs stream registration.
    WidthMismatch {
        /// Registered width.
        expected: u32,
        /// Received width.
        got: u32,
    },
    /// Query time range maps to no full chunk.
    EmptyRange,
    /// Inter-stream query over streams with unequal digest widths.
    IncompatibleStreams,
    /// Chunk bytes failed to parse.
    BadChunk,
    /// Live record bytes failed to parse.
    BadRecord,
    /// Live record targets a chunk that is already finalized.
    StaleLiveRecord {
        /// The chunk the record claimed.
        chunk: u64,
        /// First non-finalized chunk index.
        next: u64,
    },
    /// Storage failure.
    Store(StoreError),
    /// Index failure.
    Index(IndexError),
    /// The queried window's fine-grained index nodes were aged out by a
    /// rollup/decay: not corruption — the region is only answerable at a
    /// coarser resolution.
    RangeDecayed {
        /// Tree level of the missing node.
        level: u8,
        /// Node index within that level.
        index: u64,
    },
    /// Integrity ledger failure (proofs, attestation bookkeeping).
    Integrity(String),
    /// No attestation stored for the stream yet.
    NoAttestation(u128),
    /// A service-tier component (e.g. a shard ingest worker) is not
    /// available to process the request.
    Unavailable(&'static str),
    /// An error reported by a remote shard node, carried verbatim. The
    /// `Display` impl prints the remote's message unchanged, which is what
    /// keeps wire replies byte-identical between a single-process service
    /// and a multi-node cluster: the remote rendered its engine error with
    /// the same `ServerError::to_string` this process would have used.
    Remote(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::NoSuchStream(s) => write!(f, "no such stream {s:#x}"),
            ServerError::StreamExists(s) => write!(f, "stream {s:#x} already exists"),
            ServerError::OutOfOrderChunk { expected, got } => {
                write!(f, "out-of-order chunk: expected {expected}, got {got}")
            }
            ServerError::WidthMismatch { expected, got } => {
                write!(f, "digest width {got} != registered {expected}")
            }
            ServerError::EmptyRange => write!(f, "time range covers no complete chunk"),
            ServerError::IncompatibleStreams => {
                write!(f, "inter-stream query requires equal digest widths")
            }
            ServerError::BadChunk => write!(f, "malformed chunk bytes"),
            ServerError::BadRecord => write!(f, "malformed live record bytes"),
            ServerError::StaleLiveRecord { chunk, next } => {
                write!(
                    f,
                    "live record for finalized chunk {chunk} (next open chunk is {next})"
                )
            }
            ServerError::Store(e) => write!(f, "storage: {e}"),
            ServerError::Index(e) => write!(f, "index: {e}"),
            ServerError::RangeDecayed { level, index } => {
                write!(
                    f,
                    "range aged out by decay (missing index node at level {level} \
                     index {index}): only coarser aggregates remain; widen the query \
                     window or align it to the retained resolution"
                )
            }
            ServerError::Integrity(e) => write!(f, "integrity: {e}"),
            ServerError::NoAttestation(s) => {
                write!(f, "no attestation stored for stream {s:#x}")
            }
            ServerError::Unavailable(what) => write!(f, "service unavailable: {what}"),
            ServerError::Remote(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<StoreError> for ServerError {
    fn from(e: StoreError) -> Self {
        ServerError::Store(e)
    }
}

impl From<IndexError> for ServerError {
    fn from(e: IndexError) -> Self {
        match e {
            // A decayed region is a usage condition, not an index fault:
            // surface it distinctly so clients don't read it as data
            // corruption.
            IndexError::Decayed { level, index } => ServerError::RangeDecayed { level, index },
            e => ServerError::Index(e),
        }
    }
}

/// One stream's digest width plus, when the queried range covers at least
/// one full chunk, the covered window and the homomorphic sum over it.
pub type StreamStat = (u32, Option<(u64, u64, Vec<u64>)>);

/// One chunk of an ingest run: the parsed header fields the validations
/// need, plus the serialized bytes to store verbatim. Borrowing both keeps
/// the run path payload-copy-free whether the chunks arrived parsed
/// (in-process) or as wire bytes (zero-copy).
struct RunItem<'a> {
    index: u64,
    digest_ct: &'a [u64],
    bytes: &'a [u8],
}

/// Buffered real-time records of one stream: per open chunk, the `(seq,
/// sealed bytes)` records received so far.
type LiveBuffer = BTreeMap<u64, Vec<(u32, Vec<u8>)>>;

/// A verified raw read: `(attestation bytes, open range-proof bytes, chunk
/// payloads)` — the reply shape of
/// [`TimeCryptServer::get_verified_range`].
pub type VerifiedRange = (Vec<u8>, Vec<u8>, Vec<Vec<u8>>);

/// A stream's immutable registration metadata: the directory entry kept
/// in memory for every stream whether or not its state is resident.
#[derive(Debug, Clone, Copy)]
struct StreamMeta {
    t0: i64,
    delta_ms: u64,
    digest_width: u32,
}

impl StreamMeta {
    /// First chunk whose interval starts at or after `ts`.
    fn first_chunk_at_or_after(&self, ts: i64) -> u64 {
        if ts <= self.t0 {
            return 0;
        }
        ((ts - self.t0) as u64).div_ceil(self.delta_ms)
    }

    /// One past the last chunk whose interval ends at or before `ts`.
    fn chunk_end_at_or_before(&self, ts: i64) -> u64 {
        if ts <= self.t0 {
            return 0;
        }
        ((ts - self.t0) as u64) / self.delta_ms
    }

    /// Chunk containing `ts` (for raw retrieval).
    fn chunk_containing(&self, ts: i64) -> Option<u64> {
        if ts < self.t0 {
            return None;
        }
        Some(((ts - self.t0) as u64) / self.delta_ms)
    }
}

/// Per-stream server state (the hydrated, resident part).
///
/// Read/write split: the registration metadata is immutable; the
/// aggregation tree is a shared handle whose queries run lock-free
/// against a published `len` snapshot; the integrity ledger sits behind
/// an `RwLock` (proof builders share it, ingest appends take it
/// exclusively for one push); and the `ingest` mutex serializes the
/// write path only. Statistical and raw reads therefore never wait on an
/// in-flight insert.
struct StreamState {
    meta: StreamMeta,
    /// Shared-read aggregation tree: queries take `&self` and snapshot a
    /// consistent length; appends are serialized by `ingest` (plus the
    /// tree's own writer mutex as a backstop).
    tree: AggTree<Vec<u64>>,
    /// Integrity extension: the server's authenticated aggregation ledger.
    /// Rebuilt from persisted leaf records (`il/` prefix) on hydration.
    ledger: RwLock<StreamLedger>,
    /// The per-stream ingest lock: held by `insert`, `rollup`, and
    /// `delete_range` (exclusive writers). The read path never takes it.
    ingest: Mutex<()>,
}

/// One resident stream: its state handle plus the recency tick mirrored
/// in [`StreamRegistry::order`].
struct Resident {
    state: Arc<StreamState>,
    tick: u64,
}

/// The stream registry: the always-complete directory plus the bounded
/// resident set, all behind one mutex (`registry` in the documented lock
/// order). Holders never block on the store — hydration replays run
/// outside this lock, serialized per stream by a `hydrating` gate.
#[derive(Default)]
struct StreamRegistry {
    /// Every registered stream's metadata. Never evicted; this is what
    /// makes existence checks and chunk-window math O(1) without I/O.
    directory: HashMap<u128, StreamMeta>,
    /// Hydrated streams by id; `Resident::tick` mirrors `order`.
    resident: HashMap<u128, Resident>,
    /// Recency order: tick → stream id, coldest first (ticks are unique,
    /// so a `BTreeMap` gives O(log n) touch and cold-end sweeps).
    order: BTreeMap<u64, u128>,
    /// Monotonic recency clock.
    tick: u64,
    /// Per-stream single-flight hydration gates (lock class `hydrate`,
    /// taken *before* `registry`): the winner holds its stream's gate
    /// while replaying the store; concurrent cold touches queue on the
    /// gate instead of replaying again.
    hydrating: HashMap<u128, Arc<Mutex<()>>>,
}

impl StreamRegistry {
    /// Resident lookup; a hit refreshes recency and clones the handle.
    /// Every outstanding clone of a resident handle originates here or in
    /// the publish path — always under the registry lock — which is what
    /// makes the strong-count eviction gate in `sweep_to` sound.
    fn touch(&mut self, stream: u128) -> Option<Arc<StreamState>> {
        let r = self.resident.get_mut(&stream)?;
        self.order.remove(&r.tick);
        self.tick += 1;
        r.tick = self.tick;
        self.order.insert(self.tick, stream);
        Some(r.state.clone())
    }

    /// Publishes a hydrated stream as the most recently used entry.
    fn insert_resident(&mut self, stream: u128, state: Arc<StreamState>) {
        if let Some(prev) = self.resident.remove(&stream) {
            self.order.remove(&prev.tick);
        }
        self.tick += 1;
        self.order.insert(self.tick, stream);
        self.resident.insert(
            stream,
            Resident {
                state,
                tick: self.tick,
            },
        );
    }

    /// Drops a stream from the resident set (unconditionally — callers on
    /// the delete path intend to orphan in-flight references).
    fn remove_resident(&mut self, stream: u128) -> Option<Arc<StreamState>> {
        let r = self.resident.remove(&stream)?;
        self.order.remove(&r.tick);
        Some(r.state)
    }
}

/// Point-in-time counters for the lazy-hydration layer (surfaced through
/// the service tier's `ShardStatsWire`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Streams currently hydrated.
    pub resident: u64,
    /// Hydrations performed since open (cold-touch store replays).
    pub hydrations: u64,
    /// Resident streams evicted since open.
    pub evictions: u64,
}

/// The server engine. Thread-safe with a per-stream read/write split:
/// writes (`insert`, `rollup`, `delete_range`) are serialized by a
/// per-stream ingest mutex (the paper's index updates are likewise
/// serialized per stream by append order), while statistical queries, raw
/// reads, and proof builds take only shared state — so any number of
/// readers proceed concurrently with each other *and* with an in-flight
/// insert on the same stream. Stream state is demand-loaded behind a
/// bounded resident LRU (see the module docs); the crate docs spell out
/// which operation takes which lock.
pub struct TimeCryptServer {
    kv: Arc<dyn KvStore>,
    cfg: ServerConfig,
    /// Stream directory + resident set + hydration gates.
    registry: Mutex<StreamRegistry>,
    /// Real-time upload buffer (§4.6): per stream, per not-yet-finalized
    /// chunk, the sealed records received so far. Volatile by design — the
    /// durable copy is the finalized chunk that supersedes these records.
    live: Mutex<HashMap<u128, LiveBuffer>>,
    /// Cold-touch store replays since open.
    hydrations: AtomicU64,
    /// Resident streams evicted since open.
    evictions: AtomicU64,
}

fn stream_meta_key(stream: u128) -> Vec<u8> {
    let mut k = Vec::with_capacity(18);
    k.extend_from_slice(b"s/");
    k.extend_from_slice(&stream.to_be_bytes());
    k
}

fn chunk_key(stream: u128, index: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(27);
    k.extend_from_slice(b"c/");
    k.extend_from_slice(&stream.to_be_bytes());
    k.push(b'/');
    k.extend_from_slice(&index.to_be_bytes());
    k
}

/// Integrity-ledger leaf record: commitment + digest ciphertext. Retained
/// independently of the chunk payload so `delete_range` cannot silently
/// shrink the attested history.
fn ledger_key(stream: u128, index: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(28);
    k.extend_from_slice(b"il/");
    k.extend_from_slice(&stream.to_be_bytes());
    k.push(b'/');
    k.extend_from_slice(&index.to_be_bytes());
    k
}

fn attestation_key(stream: u128) -> Vec<u8> {
    let mut k = Vec::with_capacity(20);
    k.extend_from_slice(b"att/");
    k.extend_from_slice(&stream.to_be_bytes());
    k
}

fn encode_ledger_leaf(commitment: &[u8; 32], digest_ct: &[u64]) -> Vec<u8> {
    let mut v = Vec::with_capacity(32 + digest_ct.len() * 8);
    v.extend_from_slice(commitment);
    for d in digest_ct {
        v.extend_from_slice(&d.to_le_bytes());
    }
    v
}

fn decode_ledger_leaf(bytes: &[u8]) -> Option<([u8; 32], Vec<u64>)> {
    if bytes.len() < 32 || !(bytes.len() - 32).is_multiple_of(8) {
        return None;
    }
    let commitment: [u8; 32] = bytes[..32].try_into().ok()?;
    let mut sum = Vec::with_capacity((bytes.len() - 32) / 8);
    let mut word = [0u8; 8];
    for c in bytes[32..].chunks_exact(8) {
        word.copy_from_slice(c);
        sum.push(u64::from_le_bytes(word));
    }
    Some((commitment, sum))
}

impl TimeCryptServer {
    /// Opens the engine over a KV store, recovering all registered streams.
    pub fn open(kv: Arc<dyn KvStore>, cfg: ServerConfig) -> Result<Self, ServerError> {
        Self::open_filtered(kv, cfg, |_| true)
    }

    /// Opens the engine recovering only streams accepted by `owns`. This is
    /// the per-shard constructor used by `timecrypt-service`: N engines can
    /// share one KV store as long as their filters partition the stream-id
    /// space, so each stream's state (index tree, ledger, live buffer) lives
    /// in exactly one engine.
    ///
    /// Opening replays *nothing*: one scan of the stream-meta prefix
    /// builds the directory, and per-stream state (tree handle, ledger)
    /// hydrates lazily on first touch. Open cost is therefore
    /// O(registered streams' meta records), independent of history size —
    /// pinned by the `lazy_open` regression test.
    pub fn open_filtered(
        kv: Arc<dyn KvStore>,
        cfg: ServerConfig,
        owns: impl Fn(u128) -> bool,
    ) -> Result<Self, ServerError> {
        let server = TimeCryptServer {
            kv,
            cfg,
            registry: Mutex::new(StreamRegistry::default()),
            live: Mutex::new(HashMap::new()),
            hydrations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        };
        let mut directory: HashMap<u128, StreamMeta> = HashMap::new();
        for (key, meta) in server.kv.scan_prefix(b"s/")? {
            if key.len() != 18 || meta.len() != 20 {
                continue;
            }
            // The guard above makes every conversion exact; a mismatch is
            // skipped like any other malformed record rather than panicking.
            let (Ok(sid), Ok(t0), Ok(delta), Ok(width)) = (
                <[u8; 16]>::try_from(&key[2..]),
                <[u8; 8]>::try_from(&meta[..8]),
                <[u8; 8]>::try_from(&meta[8..16]),
                <[u8; 4]>::try_from(&meta[16..]),
            ) else {
                continue;
            };
            let stream = u128::from_be_bytes(sid);
            if !owns(stream) {
                continue;
            }
            directory.insert(
                stream,
                StreamMeta {
                    t0: i64::from_le_bytes(t0),
                    delta_ms: u64::from_le_bytes(delta),
                    digest_width: u32::from_le_bytes(width),
                },
            );
        }
        server.registry.lock().directory = directory;
        Ok(server)
    }

    /// Registers a stream. Registration writes the durable meta record and
    /// the directory entry only; the stream's state hydrates on first use.
    ///
    /// The directory entry is reserved under the registry lock, but the
    /// durable meta write happens *outside* it — a slow store write must
    /// not stall resident hits on every other stream. The reservation
    /// makes concurrent `create_stream` calls for the same id lose with
    /// `StreamExists` before they reach the store; if our own write
    /// fails, or a concurrent `delete_stream` removed the reservation
    /// while we were writing, we roll back (entry and orphan meta
    /// record respectively).
    pub fn create_stream(
        &self,
        stream: u128,
        t0: i64,
        delta_ms: u64,
        digest_width: u32,
    ) -> Result<(), ServerError> {
        let meta = StreamMeta {
            t0,
            delta_ms,
            digest_width,
        };
        {
            let mut reg = self.registry.lock();
            if reg.directory.contains_key(&stream) {
                return Err(ServerError::StreamExists(stream));
            }
            reg.directory.insert(stream, meta);
        }
        let mut bytes = Vec::with_capacity(20);
        bytes.extend_from_slice(&t0.to_le_bytes());
        bytes.extend_from_slice(&delta_ms.to_le_bytes());
        bytes.extend_from_slice(&digest_width.to_le_bytes());
        if let Err(e) = self.kv.put(&stream_meta_key(stream), &bytes) {
            self.registry.lock().directory.remove(&stream);
            return Err(e.into());
        }
        let still_registered = self.registry.lock().directory.contains_key(&stream);
        if !still_registered {
            // Deleted while we were writing: delete_stream already ran its
            // purge, possibly before our put landed — remove the orphan.
            self.kv.delete(&stream_meta_key(stream))?;
            return Err(ServerError::NoSuchStream(stream));
        }
        Ok(())
    }

    /// Replays persisted ledger leaves (in index order) into a fresh ledger.
    fn rebuild_ledger(&self, stream: u128) -> Result<StreamLedger, ServerError> {
        let mut prefix = b"il/".to_vec();
        prefix.extend_from_slice(&stream.to_be_bytes());
        prefix.push(b'/');
        let mut entries = self.kv.scan_prefix(&prefix)?;
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        let mut ledger = StreamLedger::new(stream);
        for (_, bytes) in entries {
            let (commitment, sum) = decode_ledger_leaf(&bytes)
                .ok_or(ServerError::Integrity("corrupt ledger leaf".into()))?;
            ledger
                .append(commitment, sum)
                .map_err(|e| ServerError::Integrity(e.to_string()))?;
        }
        Ok(ledger)
    }

    /// Deletes a stream with all chunks, index nodes, and key-store entries.
    pub fn delete_stream(&self, stream: u128) -> Result<(), ServerError> {
        let dropped = {
            let mut reg = self.registry.lock();
            if reg.directory.remove(&stream).is_none() {
                return Err(ServerError::NoSuchStream(stream));
            }
            // An in-flight hydration of this stream re-checks the
            // directory before publishing and discards its result.
            reg.remove_resident(stream)
        };
        drop(dropped);
        self.kv.delete(&stream_meta_key(stream))?;
        self.kv.delete(&attestation_key(stream))?;
        for prefix in ["c/", "i/", "im/", "il/"] {
            let mut p = prefix.as_bytes().to_vec();
            p.extend_from_slice(&stream.to_be_bytes());
            for (k, _) in self.kv.scan_prefix(&p)? {
                self.kv.delete(&k)?;
            }
        }
        KeyStore::new(self.kv.as_ref()).purge_stream(stream)?;
        self.live.lock().remove(&stream);
        Ok(())
    }

    /// The stream's resident state, hydrating it from the store on a cold
    /// touch.
    ///
    /// Single-flight protocol: a cold touch registers (or joins) the
    /// stream's hydration gate, then replays the store *outside* the
    /// registry lock while holding only the gate. Losers block on the
    /// gate and find the state resident when they wake; if the winner
    /// failed (store error) or was superseded, the next waiter either
    /// inherits winnership by re-registering the gate it already holds,
    /// or retries against the newer gate. Lock order: `hydrate` (the
    /// gate) strictly before `registry`.
    fn stream(&self, stream: u128) -> Result<Arc<StreamState>, ServerError> {
        loop {
            // Fast path: resident hit (and the cap sweep, which is a
            // no-op length check while the set is within bounds).
            let gate = {
                let mut reg = self.registry.lock();
                if let Some(st) = reg.touch(stream) {
                    let idle = Self::sweep(&mut reg, self.cfg.max_resident_streams);
                    self.note_evictions(idle.len());
                    drop(reg);
                    drop(idle);
                    return Ok(st);
                }
                if !reg.directory.contains_key(&stream) {
                    return Err(ServerError::NoSuchStream(stream));
                }
                reg.hydrating.entry(stream).or_default().clone()
            };
            let _hydrate = gate.lock();
            // Re-check under the gate: the previous holder may have
            // hydrated (take the hit), failed (inherit winnership), or
            // been superseded by a newer gate (retry).
            let meta = {
                let mut reg = self.registry.lock();
                if let Some(st) = reg.touch(stream) {
                    Self::release_gate(&mut reg, stream, &gate);
                    return Ok(st);
                }
                let Some(meta) = reg.directory.get(&stream).copied() else {
                    Self::release_gate(&mut reg, stream, &gate);
                    return Err(ServerError::NoSuchStream(stream));
                };
                match reg.hydrating.get(&stream) {
                    Some(g) if Arc::ptr_eq(g, &gate) => {}
                    Some(_) => continue,
                    None => {
                        reg.hydrating.insert(stream, gate.clone());
                    }
                }
                meta
            };
            // We are the winner: replay the store with no registry lock
            // held — resident hits on other streams proceed meanwhile.
            //
            // lint: allow(blocking-under-lock) — the hydration gate exists
            // precisely to serialize this store replay: it is per-stream,
            // ordered before `registry`, and held by at most the one
            // winner plus waiters for this same stream, so blocking here
            // stalls no one who isn't already waiting for this state.
            let hydrated = self.hydrate(stream, meta);
            let mut reg = self.registry.lock();
            Self::release_gate(&mut reg, stream, &gate);
            let st = Arc::new(hydrated?);
            if !reg.directory.contains_key(&stream) {
                // Deleted while hydrating: discard the rebuilt state.
                return Err(ServerError::NoSuchStream(stream));
            }
            self.hydrations.fetch_add(1, Ordering::Relaxed);
            reg.insert_resident(stream, st.clone());
            let idle = Self::sweep(&mut reg, self.cfg.max_resident_streams);
            self.note_evictions(idle.len());
            drop(reg);
            // Evicted state (tree caches, ledgers) deallocates outside
            // the registry lock.
            drop(idle);
            return Ok(st);
        }
    }

    /// Rebuilds one stream's heavy state from the store: the tree handle
    /// re-opens from the index's persisted meta record, the integrity
    /// ledger replays from its persisted leaves. Runs outside the registry
    /// lock, single-flighted per stream by the hydration gate.
    fn hydrate(&self, stream: u128, meta: StreamMeta) -> Result<StreamState, ServerError> {
        let _stage = trace::stage("engine.hydrate");
        let tree = AggTree::open(
            self.kv.clone(),
            stream,
            TreeConfig {
                arity: self.cfg.arity,
                cache_bytes: self.cfg.cache_bytes,
                parallel_edges: self.cfg.parallel_query,
            },
        )?;
        let ledger = self.rebuild_ledger(stream)?;
        Ok(StreamState {
            meta,
            tree,
            ledger: RwLock::new(ledger),
            ingest: Mutex::new(()),
        })
    }

    /// Retires a hydration gate if it is still the registered one (a
    /// newer gate registered after a failed winner must stay in place).
    fn release_gate(reg: &mut StreamRegistry, stream: u128, gate: &Arc<Mutex<()>>) {
        let ours = reg
            .hydrating
            .get(&stream)
            .is_some_and(|g| Arc::ptr_eq(g, gate));
        if ours {
            reg.hydrating.remove(&stream);
        }
    }

    /// Cap-driven eviction sweep; no-op when uncapped.
    fn sweep(reg: &mut StreamRegistry, cap: Option<usize>) -> Vec<Arc<StreamState>> {
        match cap {
            Some(target) => Self::sweep_to(reg, target),
            None => Vec::new(),
        }
    }

    /// Evicts cold resident streams (coldest recency first) until at most
    /// `target` remain, skipping any stream with an in-flight reference.
    /// The strong-count gate is sound because clones of a resident handle
    /// only originate under the registry lock (held here): a count of 1
    /// observed now cannot grow concurrently, so eviction never leaves a
    /// stream with two live `StreamState`s — which would split its ingest
    /// mutex across writers. Returns the evicted handles so the caller
    /// drops them after unlocking.
    fn sweep_to(reg: &mut StreamRegistry, target: usize) -> Vec<Arc<StreamState>> {
        if reg.resident.len() <= target {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        let order: Vec<(u64, u128)> = reg.order.iter().map(|(&t, &s)| (t, s)).collect();
        for (tick, stream) in order {
            if reg.resident.len() <= target {
                break;
            }
            let idle = reg
                .resident
                .get(&stream)
                .is_some_and(|r| Arc::strong_count(&r.state) == 1);
            if !idle {
                continue;
            }
            if let Some(r) = reg.resident.remove(&stream) {
                reg.order.remove(&tick);
                evicted.push(r.state);
            }
        }
        evicted
    }

    fn note_evictions(&self, n: usize) {
        if n > 0 {
            self.evictions.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Evicts every resident stream with no in-flight references,
    /// regardless of the configured cap. Maintenance / test hook: the
    /// equivalence battery calls this after every operation to force a
    /// cold rehydration path. Returns the number of streams evicted.
    pub fn evict_idle_streams(&self) -> usize {
        let mut reg = self.registry.lock();
        let evicted = Self::sweep_to(&mut reg, 0);
        self.note_evictions(evicted.len());
        let n = evicted.len();
        drop(reg);
        drop(evicted);
        n
    }

    /// Residency counters for the lazy-hydration layer.
    pub fn residency(&self) -> ResidencyStats {
        ResidencyStats {
            resident: self.registry.lock().resident.len() as u64,
            hydrations: self.hydrations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Directory lookup: the stream's immutable registration metadata,
    /// without touching (or hydrating) its resident state.
    fn stream_meta(&self, stream: u128) -> Result<StreamMeta, ServerError> {
        self.registry
            .lock()
            .directory
            .get(&stream)
            .copied()
            .ok_or(ServerError::NoSuchStream(stream))
    }

    /// The stream's published chunk count without forcing hydration: a
    /// resident stream answers from its tree handle (refreshing its
    /// recency), a cold one from the index's persisted meta record — one
    /// point read instead of a full state replay.
    fn stream_len(&self, stream: u128) -> Result<u64, ServerError> {
        {
            let mut reg = self.registry.lock();
            if let Some(st) = reg.touch(stream) {
                return Ok(st.tree.len());
            }
            if !reg.directory.contains_key(&stream) {
                return Err(ServerError::NoSuchStream(stream));
            }
        }
        Ok(stored_chunk_count(self.kv.as_ref(), stream)?)
    }

    /// Ingests one sealed chunk: stores the payload blob and appends the
    /// digest ciphertext to the aggregation index.
    pub fn insert(&self, chunk: &EncryptedChunk) -> Result<(), ServerError> {
        let mut scratch = Vec::with_capacity(chunk.encoded_len());
        chunk.encode_into(&mut scratch);
        let items = [RunItem {
            index: chunk.index,
            digest_ct: &chunk.digest_ct,
            bytes: &scratch,
        }];
        self.insert_stream_run(chunk.stream, &items)
            .pop()
            // lint: allow(panic-freedom) — `insert_stream_run` returns one verdict per item and `items` has length 1
            .expect("one verdict per chunk")
    }

    /// Zero-copy single-chunk ingest from serialized bytes (the wire
    /// path): the chunk is validated through a borrowed parse and the
    /// *input bytes* are stored directly — the serialization is canonical
    /// (see [`timecrypt_chunk::ChunkRef`]), so the stored value is
    /// byte-identical to re-serializing a parsed chunk, without ever
    /// copying the payload through an intermediate `EncryptedChunk`.
    pub fn insert_bytes(&self, bytes: &[u8]) -> Result<(), ServerError> {
        let chunk = ChunkRef::parse(bytes).map_err(|_| ServerError::BadChunk)?;
        let items = [RunItem {
            index: chunk.index,
            digest_ct: &chunk.digest_ct,
            bytes,
        }];
        self.insert_stream_run(chunk.stream, &items)
            .pop()
            // lint: allow(panic-freedom) — `insert_stream_run` returns one verdict per item and `items` has length 1
            .expect("one verdict per chunk")
    }

    /// Batched ingest of parsed chunks (any stream mix; per-stream order
    /// is the caller's submission order). Verdicts come back in input
    /// order and match what per-chunk [`insert`](Self::insert) calls would
    /// produce; the final store/index state is byte-identical (pinned by
    /// `insert_run_matches_sequential_inserts`). Each stream's run takes
    /// its ingest lock once and coalesces index writes via
    /// `AggTree::append_batch` — the whole-drain entry point of the
    /// service tier's ingest workers.
    pub fn insert_run(&self, chunks: &[EncryptedChunk]) -> Vec<Result<(), ServerError>> {
        self.insert_run_refs(&chunks.iter().collect::<Vec<_>>())
    }

    /// [`insert_run`](Self::insert_run) over a reference slice — for
    /// callers that regroup chunks (e.g. per-stream panic containment in
    /// the service tier) without cloning payloads into contiguous runs.
    pub fn insert_run_refs(&self, chunks: &[&EncryptedChunk]) -> Vec<Result<(), ServerError>> {
        let mut scratch = Vec::new();
        let mut encoded: Vec<(usize, usize)> = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            let start = scratch.len();
            chunk.encode_into(&mut scratch);
            encoded.push((start, scratch.len()));
        }
        let items: Vec<RunItem<'_>> = chunks
            .iter()
            .zip(&encoded)
            .map(|(chunk, &(start, end))| RunItem {
                index: chunk.index,
                digest_ct: &chunk.digest_ct,
                bytes: &scratch[start..end],
            })
            .collect();
        self.insert_grouped(chunks.iter().map(|c| c.stream).collect::<Vec<_>>(), items)
    }

    /// [`insert_run`](Self::insert_run) over serialized chunk bytes (the
    /// wire batch path): chunks are validated through borrowed parses and
    /// stored from the input slices — no payload copies. Unparseable
    /// entries report [`ServerError::BadChunk`] at their position.
    pub fn insert_bytes_run(&self, chunks: &[&[u8]]) -> Vec<Result<(), ServerError>> {
        let mut verdicts: Vec<Option<ServerError>> = Vec::with_capacity(chunks.len());
        let mut parsed: Vec<Option<ChunkRef<'_>>> = Vec::with_capacity(chunks.len());
        for &bytes in chunks {
            match ChunkRef::parse(bytes) {
                Ok(c) => {
                    parsed.push(Some(c));
                    verdicts.push(None);
                }
                Err(_) => {
                    parsed.push(None);
                    verdicts.push(Some(ServerError::BadChunk));
                }
            }
        }
        let mut streams = Vec::new();
        let mut items = Vec::new();
        let mut positions = Vec::new();
        for (pos, (entry, &bytes)) in parsed.iter().zip(chunks).enumerate() {
            if let Some(c) = entry {
                streams.push(c.stream);
                items.push(RunItem {
                    index: c.index,
                    digest_ct: &c.digest_ct,
                    bytes,
                });
                positions.push(pos);
            }
        }
        let run_verdicts = self.insert_grouped(streams, items);
        let mut out: Vec<Result<(), ServerError>> = verdicts
            .into_iter()
            .map(|v| match v {
                Some(e) => Err(e),
                None => Ok(()),
            })
            .collect();
        for (pos, verdict) in positions.into_iter().zip(run_verdicts) {
            out[pos] = verdict;
        }
        out
    }

    /// Groups `items` by stream (preserving each stream's submission
    /// order) and applies one locked run per stream. `streams[i]` is the
    /// owning stream of `items[i]`.
    fn insert_grouped(
        &self,
        streams: Vec<u128>,
        items: Vec<RunItem<'_>>,
    ) -> Vec<Result<(), ServerError>> {
        let mut order: Vec<u128> = Vec::new();
        let mut groups: HashMap<u128, (Vec<RunItem<'_>>, Vec<usize>)> = HashMap::new();
        for (pos, (stream, item)) in streams.into_iter().zip(items).enumerate() {
            let entry = groups.entry(stream).or_insert_with(|| {
                order.push(stream);
                (Vec::new(), Vec::new())
            });
            entry.0.push(item);
            entry.1.push(pos);
        }
        let mut out: Vec<Option<Result<(), ServerError>>> = Vec::new();
        out.resize_with(order.iter().map(|s| groups[s].1.len()).sum(), || None);
        for stream in order {
            // `order` records each stream exactly once, when its group is created.
            let Some((run, positions)) = groups.remove(&stream) else {
                continue;
            };
            for (pos, verdict) in positions
                .into_iter()
                .zip(self.insert_stream_run(stream, &run))
            {
                out[pos] = Some(verdict);
            }
        }
        out.into_iter()
            // lint: allow(panic-freedom) — every input position was pushed into exactly one group's position list, and `insert_stream_run` yields one verdict per item
            .map(|v| v.expect("every position receives a verdict"))
            .collect()
    }

    /// One stream's ordered ingest run under a single ingest-lock
    /// acquisition. Per-chunk semantics mirror sequential
    /// [`insert`](Self::insert): width and next-index validation per
    /// chunk (a rejected chunk does not advance the expected index),
    /// payload + ledger-leaf writes per accepted chunk, then **one**
    /// coalesced index append for the accepted run, ledger appends, and
    /// live-buffer cleanup. If the coalesced index append itself fails —
    /// a store fault, not a validation outcome — the first pending chunk
    /// reports the real error and the rest report `Unavailable`, and
    /// `len` was never advanced (the torn-append contract of
    /// `AggTree::append_batch`).
    fn insert_stream_run(
        &self,
        stream: u128,
        items: &[RunItem<'_>],
    ) -> Vec<Result<(), ServerError>> {
        let st = match self.stream(stream) {
            Ok(st) => st,
            Err(_) => {
                return items
                    .iter()
                    .map(|_| Err(ServerError::NoSuchStream(stream)))
                    .collect()
            }
        };
        // Exclusive per-stream ingest lock: serializes writers only.
        // Concurrent statistical/raw reads proceed against the previous
        // tree-length snapshot.
        let _ingest = st.ingest.lock();
        let mut expected = st.tree.len();
        let mut verdicts: Vec<Option<ServerError>> = Vec::with_capacity(items.len());
        // (input position, commitment) per accepted chunk, in run order.
        let mut accepted: Vec<(usize, [u8; 32])> = Vec::new();
        let mut digests: Vec<Vec<u64>> = Vec::new();
        for (pos, item) in items.iter().enumerate() {
            if item.digest_ct.len() as u32 != st.meta.digest_width {
                verdicts.push(Some(ServerError::WidthMismatch {
                    expected: st.meta.digest_width,
                    got: item.digest_ct.len() as u32,
                }));
                continue;
            }
            if item.index != expected {
                verdicts.push(Some(ServerError::OutOfOrderChunk {
                    expected,
                    got: item.index,
                }));
                continue;
            }
            let commitment = chunk_commitment(item.bytes);
            let stored = self
                .kv
                .put(&chunk_key(stream, item.index), item.bytes)
                .and_then(|()| {
                    self.kv.put(
                        &ledger_key(stream, item.index),
                        &encode_ledger_leaf(&commitment, item.digest_ct),
                    )
                });
            if let Err(e) = stored {
                // Mirrors a sequential insert dying before the index
                // append: this chunk fails, `expected` does not advance,
                // so later chunks of the run report out-of-order.
                verdicts.push(Some(ServerError::Store(e)));
                continue;
            }
            accepted.push((pos, commitment));
            digests.push(item.digest_ct.to_vec());
            verdicts.push(None);
            expected += 1;
        }
        if let Err(e) = st.tree.append_batch(&digests) {
            let mut first = Some(ServerError::from(e));
            for &(pos, _) in &accepted {
                verdicts[pos] = Some(first.take().unwrap_or(ServerError::Unavailable(
                    "batched index append failed for an earlier chunk of this run",
                )));
            }
            return verdicts
                .into_iter()
                .map(|v| match v {
                    Some(e) => Err(e),
                    None => Ok(()),
                })
                .collect();
        }
        if !accepted.is_empty() {
            let mut ledger = st.ledger.write();
            for (&(pos, commitment), digest) in accepted.iter().zip(&digests) {
                if let Err(e) = ledger.append(commitment, digest.clone()) {
                    verdicts[pos] = Some(ServerError::Integrity(e.to_string()));
                }
            }
            // The finalized chunks supersede their real-time records (§4.6
            // "dropping the encrypted records once the corresponding chunk
            // is stored") — but only chunks whose verdict stayed Ok: a
            // chunk that failed its ledger append keeps its live records,
            // exactly as a sequential insert erroring out would.
            let mut live = self.live.lock();
            if let Some(buf) = live.get_mut(&stream) {
                for (pos, _) in &accepted {
                    if verdicts[*pos].is_none() {
                        buf.remove(&items[*pos].index);
                    }
                }
            }
        }
        verdicts
            .into_iter()
            .map(|v| match v {
                Some(e) => Err(e),
                None => Ok(()),
            })
            .collect()
    }

    /// Buffers one real-time record (§4.6). The record must target a chunk
    /// that has not been finalized yet; its ciphertext is opaque to the
    /// server.
    pub fn insert_live(&self, record: &SealedRecord) -> Result<(), ServerError> {
        // Staleness check against the published chunk count — answered
        // from the resident tree or the persisted index meta, never by
        // forcing a hydration (live records are the hot real-time path).
        let next = self.stream_len(record.stream)?;
        if record.chunk < next {
            return Err(ServerError::StaleLiveRecord {
                chunk: record.chunk,
                next,
            });
        }
        self.live
            .lock()
            .entry(record.stream)
            .or_default()
            .entry(record.chunk)
            .or_default()
            .push((record.seq, record.to_bytes()));
        Ok(())
    }

    /// Returns buffered live records whose chunk interval overlaps
    /// `[ts_s, ts_e)`, in (chunk, seq) order. Only records of chunks not
    /// yet finalized exist in the buffer, so the result never overlaps
    /// [`get_range`](Self::get_range).
    pub fn get_live(
        &self,
        stream: u128,
        ts_s: i64,
        ts_e: i64,
    ) -> Result<Vec<Vec<u8>>, ServerError> {
        let meta = self.stream_meta(stream)?;
        let (t0, delta) = (meta.t0, meta.delta_ms);
        if ts_e <= ts_s {
            return Err(ServerError::EmptyRange);
        }
        let first = if ts_s <= t0 {
            0
        } else {
            ((ts_s - t0) as u64) / delta
        };
        let last_incl = if ts_e <= t0 {
            return Ok(Vec::new());
        } else {
            ((ts_e - 1 - t0) as u64) / delta
        };
        let mut out = Vec::new();
        if let Some(buf) = self.live.lock().get(&stream) {
            for (_, recs) in buf.range(first..=last_incl) {
                let mut recs = recs.clone();
                recs.sort_by_key(|(seq, _)| *seq);
                out.extend(recs.into_iter().map(|(_, bytes)| bytes));
            }
        }
        Ok(out)
    }

    /// Number of buffered live records for a stream (diagnostics/tests).
    pub fn live_len(&self, stream: u128) -> usize {
        self.live
            .lock()
            .get(&stream)
            .map(|buf| buf.values().map(Vec::len).sum())
            .unwrap_or(0)
    }

    /// Stores the owner's signed root attestation (integrity extension).
    /// Opaque except for a minimal sanity parse: the stream must match and
    /// the epoch must not regress relative to the stored attestation.
    pub fn put_attestation(&self, stream: u128, bytes: &[u8]) -> Result<(), ServerError> {
        let _ = self.stream_meta(stream)?;
        let att = RootAttestation::decode(bytes)
            .ok_or(ServerError::Integrity("malformed attestation".into()))?;
        if att.stream != stream {
            return Err(ServerError::Integrity("attestation stream mismatch".into()));
        }
        if let Some(prev) = self.kv.get(&attestation_key(stream))? {
            if let Some(prev) = RootAttestation::decode(&prev) {
                if att.epoch < prev.epoch {
                    return Err(ServerError::Integrity(
                        "attestation epoch regression".into(),
                    ));
                }
            }
        }
        self.kv.put(&attestation_key(stream), bytes)?;
        Ok(())
    }

    /// The latest stored attestation for a stream.
    pub fn get_attestation(&self, stream: u128) -> Result<Vec<u8>, ServerError> {
        let _ = self.stream_meta(stream)?;
        self.kv
            .get(&attestation_key(stream))?
            .ok_or(ServerError::NoAttestation(stream))
    }

    /// Builds an authenticated range proof for `[ts_s, ts_e)` against the
    /// latest attestation and returns `(attestation bytes, proof bytes)`.
    /// The proof's chunk window is clamped to the attested size: chunks
    /// uploaded after the last attestation are not yet provable.
    pub fn get_range_proof(
        &self,
        stream: u128,
        ts_s: i64,
        ts_e: i64,
    ) -> Result<(Vec<u8>, Vec<u8>), ServerError> {
        let att_bytes = self.get_attestation(stream)?;
        let att = RootAttestation::decode(&att_bytes)
            .ok_or(ServerError::Integrity("stored attestation corrupt".into()))?;
        let st = self.stream(stream)?;
        let lo = st.meta.first_chunk_at_or_after(ts_s);
        let hi = st
            .meta
            .chunk_end_at_or_before(ts_e)
            .min(st.tree.len())
            .min(att.size);
        if lo >= hi {
            return Err(ServerError::EmptyRange);
        }
        // Shared ledger access: proof builders only exclude the one-push
        // ledger append inside `insert`, not each other.
        let proof = st
            .ledger
            .read()
            .prove_range(lo as usize, hi as usize, att.size as usize)
            .map_err(|e| ServerError::Integrity(e.to_string()))?;
        Ok((att_bytes, proof.encode()))
    }

    /// Raw range retrieval: all chunks overlapping `[ts_s, ts_e)`.
    pub fn get_range(
        &self,
        stream: u128,
        ts_s: i64,
        ts_e: i64,
    ) -> Result<Vec<EncryptedChunk>, ServerError> {
        // Raw reads need no hydrated state: chunk-window math comes from
        // the directory, the length from `stream_len`, payloads from the
        // store directly.
        let meta = self.stream_meta(stream)?;
        if ts_e <= ts_s {
            return Err(ServerError::EmptyRange);
        }
        let len = self.stream_len(stream)?;
        let first = meta.chunk_containing(ts_s.max(meta.t0)).unwrap_or(0);
        let last_incl = match meta.chunk_containing(ts_e - 1) {
            Some(c) => c.min(len.saturating_sub(1)),
            None => return Err(ServerError::EmptyRange),
        };
        if len == 0 || first > last_incl {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity((last_incl - first + 1) as usize);
        for i in first..=last_incl {
            if let Some(bytes) = self.kv.get(&chunk_key(stream, i))? {
                out.push(EncryptedChunk::from_bytes(&bytes).map_err(|_| ServerError::BadChunk)?);
            }
        }
        Ok(out)
    }

    /// One stream's contribution to a statistical range query: its digest
    /// width plus, if the range covers at least one full chunk, the chunk
    /// window and the homomorphic sum over it. `None` means the range is
    /// empty for this stream (the caller decides whether that is an error).
    ///
    /// This is the fan-out unit of the sharded scatter-gather query path
    /// (`timecrypt-service`): [`get_stat_range`](Self::get_stat_range) is a
    /// sequential fold over it, so per-stream results merged in request
    /// order reproduce the single-engine reply exactly.
    ///
    /// Takes no exclusive lock: any number of concurrent `stream_stat`
    /// calls proceed against each other and against an in-flight `insert`
    /// on the same stream, answering for the chunk prefix published when
    /// the call began.
    pub fn stream_stat(
        &self,
        stream: u128,
        ts_s: i64,
        ts_e: i64,
    ) -> Result<StreamStat, ServerError> {
        let st = self.stream(stream)?;
        let lo = st.meta.first_chunk_at_or_after(ts_s);
        let hi = st.meta.chunk_end_at_or_before(ts_e).min(st.tree.len());
        if lo >= hi {
            return Ok((st.meta.digest_width, None));
        }
        let part = st.tree.query(lo, hi)?;
        Ok((st.meta.digest_width, Some((lo, hi, part))))
    }

    /// Statistical query over one or more streams: the homomorphic sum of
    /// all chunk digests fully inside `[ts_s, ts_e)`, per stream, combined.
    /// Returns the per-stream chunk boundaries (the client needs them to
    /// derive boundary keys) and the combined aggregate.
    pub fn get_stat_range(
        &self,
        streams: &[u128],
        ts_s: i64,
        ts_e: i64,
    ) -> Result<StatReply, ServerError> {
        merge_stream_stats(
            streams
                .iter()
                .map(|&sid| (sid, self.stream_stat(sid, ts_s, ts_e))),
        )
    }

    /// Deletes raw chunk payloads in `[ts_s, ts_e)` while keeping digests in
    /// the index (Table 1 (7): "while maintaining per-chunk digest").
    pub fn delete_range(&self, stream: u128, ts_s: i64, ts_e: i64) -> Result<usize, ServerError> {
        let st = self.stream(stream)?;
        // Deletion is a writer: keep it serialized with inserts/rollups.
        let _ingest = st.ingest.lock();
        let lo = st.meta.first_chunk_at_or_after(ts_s);
        let hi = st.meta.chunk_end_at_or_before(ts_e).min(st.tree.len());
        let mut n = 0;
        for i in lo..hi {
            let key = chunk_key(stream, i);
            if self.kv.get(&key)?.is_some() {
                self.kv.delete(&key)?;
                n += 1;
            }
        }
        Ok(n)
    }

    /// Data decay: ages out index levels below `keep_level` for chunks
    /// before `before_ts` (§4.5 data decay / Table 1 (3) rollup).
    pub fn rollup(
        &self,
        stream: u128,
        before_ts: i64,
        keep_level: u8,
    ) -> Result<usize, ServerError> {
        let st = self.stream(stream)?;
        let _ingest = st.ingest.lock();
        let cutoff = st.meta.chunk_end_at_or_before(before_ts).min(st.tree.len());
        Ok(st.tree.decay(cutoff, keep_level)?)
    }

    /// Verified raw retrieval (integrity extension): the chunks overlapping
    /// `[ts_s, ts_e)` plus an *open* range proof binding each chunk's
    /// commitment to the latest attestation. The window is clamped to the
    /// attested size. Errors if any covered chunk payload was deleted —
    /// completeness of raw data cannot be proven once payloads decay.
    pub fn get_verified_range(
        &self,
        stream: u128,
        ts_s: i64,
        ts_e: i64,
    ) -> Result<VerifiedRange, ServerError> {
        let att_bytes = self.get_attestation(stream)?;
        let att = RootAttestation::decode(&att_bytes)
            .ok_or(ServerError::Integrity("stored attestation corrupt".into()))?;
        let st = self.stream(stream)?;
        // Raw reads cover every chunk *overlapping* the interval, matching
        // get_range's semantics (not only fully-contained chunks).
        if ts_e <= ts_s {
            return Err(ServerError::EmptyRange);
        }
        let lo = st.meta.chunk_containing(ts_s.max(st.meta.t0)).unwrap_or(0);
        let hi = match st.meta.chunk_containing(ts_e - 1) {
            Some(c) => (c + 1).min(st.tree.len()).min(att.size),
            None => return Err(ServerError::EmptyRange),
        };
        if lo >= hi {
            return Err(ServerError::EmptyRange);
        }
        let proof = st
            .ledger
            .read()
            .prove_range_open(lo as usize, hi as usize, att.size as usize)
            .map_err(|e| ServerError::Integrity(e.to_string()))?;
        let mut chunks = Vec::with_capacity((hi - lo) as usize);
        for i in lo..hi {
            let bytes = self
                .kv
                .get(&chunk_key(stream, i))?
                .ok_or(ServerError::Integrity(
                    "chunk payload deleted; raw completeness unprovable".into(),
                ))?;
            chunks.push(bytes);
        }
        Ok((att_bytes, proof.encode(), chunks))
    }

    /// Stream metadata. Non-hydrating: directory entry plus the published
    /// chunk count (resident tree or persisted index meta).
    pub fn stream_info(&self, stream: u128) -> Result<StreamInfoWire, ServerError> {
        let meta = self.stream_meta(stream)?;
        let len = self.stream_len(stream)?;
        Ok(StreamInfoWire {
            stream,
            t0: meta.t0,
            delta_ms: meta.delta_ms,
            digest_width: meta.digest_width,
            len,
        })
    }

    /// Number of registered streams (shard-occupancy metric). Counts the
    /// directory, not the resident set — see [`residency`](Self::residency)
    /// for the latter.
    pub fn stream_count(&self) -> usize {
        self.registry.lock().directory.len()
    }

    /// Ids of every registered stream, ascending (deterministic order for
    /// replica rebuild and diagnostics).
    pub fn stream_ids(&self) -> Vec<u128> {
        let mut ids: Vec<u128> = self.registry.lock().directory.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Metadata of every registered stream, ascending by id — the
    /// enumeration half of the replica-rebuild protocol, shared by every
    /// deployment shape (single engine, local shard, shard node) so the
    /// listing semantics cannot diverge between them.
    pub fn stream_infos(&self) -> Result<Vec<StreamInfoWire>, ServerError> {
        self.stream_ids()
            .into_iter()
            .map(|sid| self.stream_info(sid))
            .collect()
    }

    /// Pages raw sealed chunks for replica rebuild: serialized chunks of
    /// `stream` starting at index `from_idx`, at most `max_bytes` of
    /// payload per page (a page always carries at least one chunk when one
    /// is available, so an oversized chunk cannot stall the export).
    /// Returns `(chunks, next_idx, done)`; `done` means no further chunks
    /// are exportable — the page reached the stream's published length, or
    /// the next payload was deleted (`delete_range` decay) and the
    /// contiguous exportable prefix ends here.
    pub fn export_chunks(
        &self,
        stream: u128,
        from_idx: u64,
        max_bytes: usize,
    ) -> Result<(Vec<Vec<u8>>, u64, bool), ServerError> {
        // Non-hydrating on purpose: a replica rebuild pages *every*
        // stream of a shard, and pulling each one resident would thrash
        // the LRU for state the export never reads (payloads come
        // straight from the store). Like the read path, it answers for
        // the chunk prefix published when the call began; the rebuild
        // loop re-reads lengths per page, so a concurrent append is
        // simply picked up by the next page.
        let len = self.stream_len(stream)?;
        let mut out = Vec::new();
        let mut bytes = 0usize;
        let mut idx = from_idx;
        while idx < len {
            match self.kv.get(&chunk_key(stream, idx))? {
                Some(b) => {
                    if !out.is_empty() && bytes + b.len() > max_bytes {
                        return Ok((out, idx, false));
                    }
                    bytes += b.len();
                    out.push(b);
                    idx += 1;
                }
                None => return Ok((out, idx, true)),
            }
        }
        Ok((out, idx, true))
    }

    /// Key-store facade.
    pub fn keystore(&self) -> KeyStore<'_> {
        KeyStore::new(self.kv.as_ref())
    }

    /// Underlying store (diagnostics, size accounting in benches).
    pub fn kv(&self) -> &Arc<dyn KvStore> {
        &self.kv
    }
}

/// Folds per-stream stat results (in request order) into one [`StatReply`],
/// with the same error semantics as a sequential single-engine walk: the
/// first stream that is unknown, empty, or width-incompatible aborts the
/// query. Shared by the single-engine path and the sharded scatter-gather
/// merge in `timecrypt-service`, which is what makes the two paths
/// byte-identical on the wire.
pub fn merge_stream_stats(
    results: impl IntoIterator<Item = (u128, Result<StreamStat, ServerError>)>,
) -> Result<StatReply, ServerError> {
    let mut parts = Vec::new();
    let mut agg: Option<Vec<u64>> = None;
    let mut width: Option<u32> = None;
    for (sid, result) in results {
        let (w, range) = result?;
        match width {
            Some(prev) if prev != w => return Err(ServerError::IncompatibleStreams),
            None => width = Some(w),
            _ => {}
        }
        let (lo, hi, part) = range.ok_or(ServerError::EmptyRange)?;
        match &mut agg {
            Some(a) => {
                for (x, y) in a.iter_mut().zip(part.iter()) {
                    *x = x.wrapping_add(*y);
                }
            }
            None => agg = Some(part),
        }
        parts.push((sid, lo, hi));
    }
    match agg {
        Some(agg) => Ok(StatReply { parts, agg }),
        None => Err(ServerError::EmptyRange),
    }
}

/// Renders per-chunk batch verdicts into the wire's `(position, message)`
/// error list (successes are implicit). Shared by every `InsertBatch`
/// handler so error strings cannot diverge between deployment shapes.
pub fn batch_errors(verdicts: Vec<Result<(), ServerError>>) -> Vec<(u32, String)> {
    verdicts
        .into_iter()
        .enumerate()
        .filter_map(|(i, v)| v.err().map(|e| (i as u32, e.to_string())))
        .collect()
}

impl Handler for TimeCryptServer {
    /// Zero-copy frame entry point: ingest requests are parsed as borrows
    /// of the frame buffer and stored without payload copies
    /// ([`TimeCryptServer::insert_bytes`]); everything else takes the
    /// owned path. Replies are byte-identical to the default
    /// decode-then-`handle` route (same validations, same error strings).
    // lint: deny(alloc)
    fn handle_frame(&self, body: &[u8]) -> Response {
        match RequestRef::decode(body) {
            Ok(RequestRef::Insert { chunk }) => match self.insert_bytes(chunk) {
                Ok(()) => Response::Ok,
                // lint: allow(no-alloc) — error formatting on the rejection path only; accepted chunks stay allocation-free
                Err(e) => Response::Error(e.to_string()),
            },
            Ok(RequestRef::InsertBatch { chunks }) => Response::Batch {
                errors: batch_errors(self.insert_bytes_run(&chunks)),
            },
            // lint: allow(no-alloc) — non-ingest requests take the owned decode path by design
            Ok(other) => self.handle(other.to_owned()),
            // lint: allow(no-alloc) — malformed-frame rejection path
            Err(e) => Response::Error(format!("bad request: {e}")),
        }
    }

    fn handle(&self, req: Request) -> Response {
        fn ok_or<T>(r: Result<T, ServerError>, f: impl FnOnce(T) -> Response) -> Response {
            match r {
                Ok(v) => f(v),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        match req {
            Request::CreateStream {
                stream,
                t0,
                delta_ms,
                digest_width,
            } => ok_or(
                self.create_stream(stream, t0, delta_ms, digest_width),
                |_| Response::Ok,
            ),
            Request::DeleteStream { stream } => ok_or(self.delete_stream(stream), |_| Response::Ok),
            Request::Insert { chunk } => match EncryptedChunk::from_bytes(&chunk) {
                Ok(c) => ok_or(self.insert(&c), |_| Response::Ok),
                Err(_) => Response::Error(ServerError::BadChunk.to_string()),
            },
            Request::InsertLive { record } => match SealedRecord::from_bytes(&record) {
                Ok(r) => ok_or(self.insert_live(&r), |_| Response::Ok),
                Err(_) => Response::Error(ServerError::BadRecord.to_string()),
            },
            Request::GetLive { stream, ts_s, ts_e } => {
                ok_or(self.get_live(stream, ts_s, ts_e), Response::Records)
            }
            Request::GetRange { stream, ts_s, ts_e } => {
                ok_or(self.get_range(stream, ts_s, ts_e), |chunks| {
                    Response::Chunks(chunks.iter().map(|c| c.to_bytes()).collect())
                })
            }
            Request::GetStatRange {
                streams,
                ts_s,
                ts_e,
            } => ok_or(self.get_stat_range(&streams, ts_s, ts_e), Response::Stat),
            Request::DeleteRange { stream, ts_s, ts_e } => {
                ok_or(self.delete_range(stream, ts_s, ts_e), |_| Response::Ok)
            }
            Request::Rollup {
                stream,
                before_ts,
                keep_level,
            } => ok_or(self.rollup(stream, before_ts, keep_level), |_| Response::Ok),
            Request::StreamInfo { stream } => ok_or(self.stream_info(stream), Response::Info),
            Request::PutGrant {
                stream,
                principal,
                blob,
            } => ok_or(
                self.keystore()
                    .put_grant(stream, &principal, &blob)
                    .map_err(ServerError::from),
                |_| Response::Ok,
            ),
            Request::GetGrants { stream, principal } => ok_or(
                self.keystore()
                    .get_grants(stream, &principal)
                    .map_err(ServerError::from),
                Response::Blobs,
            ),
            Request::RevokeGrants { stream, principal } => ok_or(
                self.keystore()
                    .revoke_grants(stream, &principal)
                    .map_err(ServerError::from),
                |_| Response::Ok,
            ),
            Request::PutEnvelopes {
                stream,
                resolution,
                envelopes,
            } => ok_or(
                self.keystore()
                    .put_envelopes(stream, resolution, &envelopes)
                    .map_err(ServerError::from),
                |_| Response::Ok,
            ),
            Request::GetEnvelopes {
                stream,
                resolution,
                lo,
                hi,
            } => ok_or(
                self.keystore()
                    .get_envelopes(stream, resolution, lo, hi)
                    .map_err(ServerError::from),
                Response::Envelopes,
            ),
            Request::PutAttestation {
                stream,
                attestation,
            } => ok_or(self.put_attestation(stream, &attestation), |_| Response::Ok),
            Request::GetAttestation { stream } => {
                ok_or(self.get_attestation(stream), |a| Response::Blobs(vec![a]))
            }
            Request::GetRangeProof { stream, ts_s, ts_e } => ok_or(
                self.get_range_proof(stream, ts_s, ts_e),
                |(attestation, proof)| Response::Attested { attestation, proof },
            ),
            Request::GetVerifiedRange { stream, ts_s, ts_e } => ok_or(
                self.get_verified_range(stream, ts_s, ts_e),
                |(attestation, proof, chunks)| Response::VerifiedChunks {
                    attestation,
                    proof,
                    chunks,
                },
            ),
            Request::InsertBatch { chunks } => {
                let views: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
                Response::Batch {
                    errors: batch_errors(self.insert_bytes_run(&views)),
                }
            }
            Request::Stats => {
                Response::Error("service stats unavailable: single-engine deployment".into())
            }
            // A single engine owns every stream: the shard id is a routing
            // concept of the service tier, so it is ignored here.
            Request::ListStreams { .. } => ok_or(self.stream_infos(), Response::StreamList),
            Request::ExportStream { stream, from_idx } => ok_or(
                self.export_chunks(stream, from_idx, EXPORT_PAGE_BYTES),
                |(chunks, next_idx, done)| Response::StreamChunks {
                    chunks,
                    next_idx,
                    done,
                },
            ),
            Request::Ping => Response::Pong,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timecrypt_chunk::{ChunkBuilder, DataPoint, StreamConfig};
    use timecrypt_core::heac::decrypt_range_sum;
    use timecrypt_core::StreamKeyMaterial;
    use timecrypt_crypto::{PrgKind, SecureRandom};
    use timecrypt_store::MemKv;

    fn server() -> TimeCryptServer {
        TimeCryptServer::open(Arc::new(MemKv::new()), ServerConfig::default()).unwrap()
    }

    fn keys() -> StreamKeyMaterial {
        StreamKeyMaterial::with_params(1, [7u8; 16], 24, PrgKind::Aes).unwrap()
    }

    /// Ingests `n` chunks of 10 points each into stream 1 (Δ=10 s, t0=0),
    /// point value = chunk*10 + i.
    fn ingest(server: &TimeCryptServer, n: u64) -> StreamConfig {
        let cfg = StreamConfig::new(1, "hr", 0, 10_000);
        let km = keys();
        let mut rng = SecureRandom::from_seed_insecure(3);
        server
            .create_stream(1, 0, 10_000, cfg.schema.width() as u32)
            .unwrap();
        let mut builder = ChunkBuilder::new(cfg.clone());
        for c in 0..n {
            for i in 0..10 {
                let ts = c as i64 * 10_000 + i * 1000;
                for done in builder
                    .push(DataPoint::new(ts, (c * 10 + i as u64) as i64))
                    .unwrap()
                {
                    server
                        .insert(&done.seal(&cfg, &km, &mut rng).unwrap())
                        .unwrap();
                }
            }
        }
        if let Some(tail) = builder.flush() {
            server
                .insert(&tail.seal(&cfg, &km, &mut rng).unwrap())
                .unwrap();
        }
        cfg
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let s = server();
        let cfg = ingest(&s, 10);
        let reply = s.get_stat_range(&[1], 0, 100_000).unwrap();
        assert_eq!(reply.parts, vec![(1, 0, 10)]);
        let dec = decrypt_range_sum(&keys().tree, 0, 10, &reply.agg).unwrap();
        let summary = cfg.schema.interpret(&dec);
        // Values are 0..100.
        assert_eq!(summary.sum, Some((0..100i64).sum::<i64>()));
        assert_eq!(summary.count, Some(100));
    }

    #[test]
    fn partial_time_window_aligns_to_chunks() {
        let s = server();
        ingest(&s, 10);
        // [15s, 35s): only chunk 2 ([20s,30s)) is fully inside.
        let reply = s.get_stat_range(&[1], 15_000, 35_000).unwrap();
        assert_eq!(reply.parts, vec![(1, 2, 3)]);
    }

    #[test]
    fn duplicate_stream_rejected() {
        let s = server();
        s.create_stream(1, 0, 1000, 2).unwrap();
        assert!(matches!(
            s.create_stream(1, 0, 1000, 2),
            Err(ServerError::StreamExists(1))
        ));
    }

    #[test]
    fn out_of_order_and_wrong_width_rejected() {
        let s = server();
        s.create_stream(1, 0, 1000, 2).unwrap();
        let c = EncryptedChunk {
            stream: 1,
            index: 5,
            digest_ct: vec![0, 0],
            payload: vec![],
        };
        assert!(matches!(
            s.insert(&c),
            Err(ServerError::OutOfOrderChunk {
                expected: 0,
                got: 5
            })
        ));
        let c = EncryptedChunk {
            stream: 1,
            index: 0,
            digest_ct: vec![0],
            payload: vec![],
        };
        assert!(matches!(
            s.insert(&c),
            Err(ServerError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn unknown_stream_errors() {
        let s = server();
        assert!(matches!(
            s.stream_info(9),
            Err(ServerError::NoSuchStream(9))
        ));
        assert!(matches!(
            s.get_stat_range(&[9], 0, 10),
            Err(ServerError::NoSuchStream(9))
        ));
    }

    #[test]
    fn get_range_returns_sealed_chunks() {
        let s = server();
        ingest(&s, 5);
        let chunks = s.get_range(1, 0, 50_000).unwrap();
        assert_eq!(chunks.len(), 5);
        let points = chunks[2].open_payload(&keys().tree).unwrap();
        assert_eq!(points.len(), 10);
        assert_eq!(points[0].value, 20);
    }

    #[test]
    fn delete_range_keeps_digests() {
        let s = server();
        ingest(&s, 10);
        assert_eq!(s.delete_range(1, 0, 50_000).unwrap(), 5);
        // Raw chunks gone...
        assert_eq!(s.get_range(1, 0, 50_000).unwrap().len(), 0);
        // ...but statistics still served from the index.
        let reply = s.get_stat_range(&[1], 0, 100_000).unwrap();
        assert_eq!(reply.parts, vec![(1, 0, 10)]);
    }

    #[test]
    fn multi_stream_query_combines() {
        let s = server();
        let km1 = StreamKeyMaterial::with_params(1, [1u8; 16], 20, PrgKind::Aes).unwrap();
        let km2 = StreamKeyMaterial::with_params(2, [2u8; 16], 20, PrgKind::Aes).unwrap();
        let mut rng = SecureRandom::from_seed_insecure(5);
        for (id, km) in [(1u128, &km1), (2u128, &km2)] {
            let cfg = StreamConfig {
                schema: timecrypt_chunk::DigestSchema::sum_count(),
                ..StreamConfig::new(id, "m", 0, 10_000)
            };
            s.create_stream(id, 0, 10_000, 2).unwrap();
            for c in 0..4u64 {
                let chunk = timecrypt_chunk::PlainChunk {
                    stream: id,
                    index: c,
                    points: vec![DataPoint::new(
                        c as i64 * 10_000,
                        (id as i64) * 100 + c as i64,
                    )],
                };
                s.insert(&chunk.seal(&cfg, km, &mut rng).unwrap()).unwrap();
            }
        }
        let reply = s.get_stat_range(&[1, 2], 0, 40_000).unwrap();
        assert_eq!(reply.parts, vec![(1, 0, 4), (2, 0, 4)]);
        // Decrypt: subtract both streams' boundary keys.
        let d1 = decrypt_range_sum(&km1.tree, 0, 4, &reply.agg).unwrap();
        let both = decrypt_range_sum(&km2.tree, 0, 4, &d1).unwrap();
        let expect_sum: i64 =
            (0..4).map(|c| 100 + c).sum::<i64>() + (0..4).map(|c| 200 + c).sum::<i64>();
        assert_eq!(both[0] as i64, expect_sum);
        assert_eq!(both[1], 8, "total count across streams");
    }

    #[test]
    fn server_recovers_from_store() {
        let kv: Arc<dyn KvStore> = Arc::new(MemKv::new());
        {
            let s = TimeCryptServer::open(kv.clone(), ServerConfig::default()).unwrap();
            ingest(&s, 8);
        }
        let s = TimeCryptServer::open(kv, ServerConfig::default()).unwrap();
        let info = s.stream_info(1).unwrap();
        assert_eq!(info.len, 8);
        let reply = s.get_stat_range(&[1], 0, 80_000).unwrap();
        assert_eq!(reply.parts, vec![(1, 0, 8)]);
    }

    #[test]
    fn delete_stream_purges_everything() {
        let s = server();
        ingest(&s, 4);
        s.keystore().put_grant(1, "alice", b"blob").unwrap();
        s.delete_stream(1).unwrap();
        assert!(matches!(
            s.stream_info(1),
            Err(ServerError::NoSuchStream(1))
        ));
        assert!(s.keystore().get_grants(1, "alice").unwrap().is_empty());
        // Stream can be recreated from scratch.
        s.create_stream(1, 0, 10_000, 3).unwrap();
        assert_eq!(s.stream_info(1).unwrap().len, 0);
    }

    #[test]
    fn handler_maps_requests() {
        let s = server();
        assert_eq!(s.handle(Request::Ping), Response::Pong);
        assert_eq!(
            s.handle(Request::CreateStream {
                stream: 3,
                t0: 0,
                delta_ms: 1000,
                digest_width: 1
            }),
            Response::Ok
        );
        match s.handle(Request::StreamInfo { stream: 3 }) {
            Response::Info(i) => assert_eq!(i.delta_ms, 1000),
            other => panic!("unexpected {other:?}"),
        }
        match s.handle(Request::StreamInfo { stream: 99 }) {
            Response::Error(e) => assert!(e.contains("no such stream")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rollup_ages_out_fine_levels() {
        let kv: Arc<dyn KvStore> = Arc::new(MemKv::new());
        let s = TimeCryptServer::open(
            kv,
            ServerConfig {
                arity: 4,
                cache_bytes: 1 << 20,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let cfg = StreamConfig {
            schema: timecrypt_chunk::DigestSchema::sum_only(),
            ..StreamConfig::new(1, "m", 0, 10_000)
        };
        let km = keys();
        let mut rng = SecureRandom::from_seed_insecure(7);
        s.create_stream(1, 0, 10_000, 1).unwrap();
        for c in 0..64u64 {
            let chunk = timecrypt_chunk::PlainChunk {
                stream: 1,
                index: c,
                points: vec![DataPoint::new(c as i64 * 10_000, c as i64)],
            };
            s.insert(&chunk.seal(&cfg, &km, &mut rng).unwrap()).unwrap();
        }
        let removed = s.rollup(1, 320_000, 2).unwrap();
        assert!(removed > 0);
        // Coarse query over the decayed region still works (level-2 spans 16).
        let reply = s.get_stat_range(&[1], 0, 640_000).unwrap();
        let dec = decrypt_range_sum(&km.tree, 0, 64, &reply.agg).unwrap();
        assert_eq!(dec[0], (0..64).sum::<u64>());
        // A fine-grained query below the rolled-up level is a *decay*
        // error, not corruption: [0s, 10s) needs the level-1 node that
        // rollup legitimately removed.
        match s.get_stat_range(&[1], 0, 10_000) {
            Err(ServerError::RangeDecayed { level: 1, index: 0 }) => {}
            other => panic!("expected RangeDecayed, got {other:?}"),
        }
        let msg = s.get_stat_range(&[1], 0, 10_000).unwrap_err().to_string();
        assert!(
            msg.contains("decay") && msg.contains("coarser"),
            "error must read as an aging condition: {msg}"
        );
    }

    #[test]
    fn queries_stay_exact_while_ingest_holds_the_write_path() {
        // One ingest thread appends chunks; reader threads continuously run
        // statistical queries, raw reads, and metadata reads on the same
        // stream. Every statistical reply must be exact for the chunk
        // prefix it observed — a torn `len` or partially published index
        // node would break the decrypted closed-form check.
        use std::sync::atomic::{AtomicBool, Ordering};
        let s = Arc::new(server());
        let cfg = StreamConfig {
            schema: timecrypt_chunk::DigestSchema::sum_count(),
            ..StreamConfig::new(1, "m", 0, 10_000)
        };
        let km = keys();
        s.create_stream(1, 0, 10_000, 2).unwrap();
        const N: u64 = 300;
        let mut rng = SecureRandom::from_seed_insecure(11);
        let chunks: Vec<EncryptedChunk> = (0..N)
            .map(|c| {
                timecrypt_chunk::PlainChunk {
                    stream: 1,
                    index: c,
                    points: vec![DataPoint::new(c as i64 * 10_000, c as i64)],
                }
                .seal(&cfg, &km, &mut rng)
                .unwrap()
            })
            .collect();
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            {
                let s = s.clone();
                let done = done.clone();
                scope.spawn(move || {
                    for c in &chunks {
                        s.insert(c).unwrap();
                    }
                    done.store(true, Ordering::Release);
                });
            }
            for _ in 0..3 {
                let s = s.clone();
                let done = done.clone();
                let km = keys();
                scope.spawn(move || {
                    let mut exact_replies = 0u64;
                    loop {
                        let stop = done.load(Ordering::Acquire);
                        match s.get_stat_range(&[1], 0, N as i64 * 10_000) {
                            Ok(reply) => {
                                // The reply covers some published prefix
                                // [0, hi); its sum/count must match the
                                // closed form for exactly that prefix.
                                assert_eq!(reply.parts.len(), 1);
                                let (sid, lo, hi) = reply.parts[0];
                                assert_eq!((sid, lo), (1, 0));
                                let dec = decrypt_range_sum(&km.tree, lo, hi, &reply.agg).unwrap();
                                assert_eq!(dec[0], (0..hi).sum::<u64>(), "sum for [0,{hi})");
                                assert_eq!(dec[1], hi, "count for [0,{hi})");
                                exact_replies += 1;
                            }
                            // Only acceptable before the first chunk lands.
                            Err(ServerError::EmptyRange) => {}
                            Err(e) => panic!("reader failed: {e}"),
                        }
                        let info = s.stream_info(1).unwrap();
                        assert!(info.len <= N);
                        if stop {
                            break;
                        }
                    }
                    assert!(exact_replies > 0, "reader never saw a full reply");
                });
            }
        });
        assert_eq!(s.stream_info(1).unwrap().len, N);
    }

    /// Seals one chunk of stream `id` for the equivalence tests.
    fn sealed(id: u128, index: u64, seed: u64) -> EncryptedChunk {
        let cfg = StreamConfig {
            schema: timecrypt_chunk::DigestSchema::sum_count(),
            ..StreamConfig::new(id, "m", 0, 10_000)
        };
        let km = StreamKeyMaterial::with_params(id, [id as u8; 16], 20, PrgKind::Aes).unwrap();
        let mut rng = SecureRandom::from_seed_insecure(seed);
        timecrypt_chunk::PlainChunk {
            stream: id,
            index,
            points: vec![DataPoint::new(index as i64 * 10_000, seed as i64)],
        }
        .seal(&cfg, &km, &mut rng)
        .unwrap()
    }

    fn dump(kv: &dyn KvStore) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all = kv.scan_prefix(b"").unwrap();
        all.sort();
        all
    }

    #[test]
    fn insert_run_matches_sequential_inserts() {
        // A mixed-stream batch with every validation failure mode: the
        // batched path must produce identical per-chunk verdicts AND a
        // byte-identical store to sequential inserts.
        let kv_seq: Arc<dyn KvStore> = Arc::new(MemKv::new());
        let kv_run: Arc<dyn KvStore> = Arc::new(MemKv::new());
        let seq = TimeCryptServer::open(kv_seq.clone(), ServerConfig::default()).unwrap();
        let run = TimeCryptServer::open(kv_run.clone(), ServerConfig::default()).unwrap();
        for s in [&seq, &run] {
            s.create_stream(1, 0, 10_000, 2).unwrap();
            s.create_stream(2, 0, 10_000, 2).unwrap();
        }
        let mut batch = vec![
            sealed(1, 0, 10),
            sealed(2, 0, 20),
            sealed(1, 1, 11),
            sealed(1, 5, 99), // out of order
            sealed(2, 1, 21),
            sealed(3, 0, 1), // unknown stream
        ];
        // Width mismatch.
        batch.push(EncryptedChunk {
            stream: 1,
            index: 2,
            digest_ct: vec![0],
            payload: vec![],
        });
        let seq_verdicts: Vec<Result<(), ServerError>> =
            batch.iter().map(|c| seq.insert(c)).collect();
        let run_verdicts = run.insert_run(&batch);
        assert_eq!(seq_verdicts.len(), run_verdicts.len());
        for (i, (a, b)) in seq_verdicts.iter().zip(&run_verdicts).enumerate() {
            match (a, b) {
                (Ok(()), Ok(())) => {}
                (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string(), "chunk {i}"),
                other => panic!("verdicts diverge at {i}: {other:?}"),
            }
        }
        assert_eq!(
            dump(kv_seq.as_ref()),
            dump(kv_run.as_ref()),
            "stores must be byte-identical"
        );
        // And the bytes path over the same input is identical again.
        let kv_bytes: Arc<dyn KvStore> = Arc::new(MemKv::new());
        let by_bytes = TimeCryptServer::open(kv_bytes.clone(), ServerConfig::default()).unwrap();
        by_bytes.create_stream(1, 0, 10_000, 2).unwrap();
        by_bytes.create_stream(2, 0, 10_000, 2).unwrap();
        let encoded: Vec<Vec<u8>> = batch.iter().map(|c| c.to_bytes()).collect();
        let views: Vec<&[u8]> = encoded.iter().map(Vec::as_slice).collect();
        let bytes_verdicts = by_bytes.insert_bytes_run(&views);
        for (a, b) in run_verdicts.iter().zip(&bytes_verdicts) {
            assert_eq!(a.is_ok(), b.is_ok());
        }
        assert_eq!(dump(kv_run.as_ref()), dump(kv_bytes.as_ref()));
    }

    #[test]
    fn handle_frame_matches_handle() {
        // The zero-copy frame path must answer byte-identically to the
        // decode-then-handle default, for ingest and non-ingest requests,
        // success and failure alike.
        let kv_a: Arc<dyn KvStore> = Arc::new(MemKv::new());
        let kv_b: Arc<dyn KvStore> = Arc::new(MemKv::new());
        let a = TimeCryptServer::open(kv_a.clone(), ServerConfig::default()).unwrap();
        let b = TimeCryptServer::open(kv_b.clone(), ServerConfig::default()).unwrap();
        let requests = vec![
            Request::CreateStream {
                stream: 1,
                t0: 0,
                delta_ms: 10_000,
                digest_width: 2,
            },
            Request::Insert {
                chunk: sealed(1, 0, 5).to_bytes(),
            },
            Request::InsertBatch {
                chunks: vec![
                    sealed(1, 1, 6).to_bytes(),
                    sealed(1, 9, 7).to_bytes(), // out of order
                    vec![1, 2, 3],              // malformed
                ],
            },
            Request::Insert {
                chunk: vec![9, 9], // malformed
            },
            Request::GetStatRange {
                streams: vec![1],
                ts_s: 0,
                ts_e: 20_000,
            },
            Request::StreamInfo { stream: 1 },
            Request::StreamInfo { stream: 42 },
            Request::Ping,
        ];
        for req in requests {
            let frame = req.encode();
            let via_frame = a.handle_frame(&frame);
            let via_handle = b.handle(req);
            assert_eq!(
                via_frame.encode(),
                via_handle.encode(),
                "replies diverge for {via_handle:?}"
            );
        }
        assert_eq!(dump(kv_a.as_ref()), dump(kv_b.as_ref()));
        // Undecodable frames render the same error as the default path.
        assert_eq!(
            a.handle_frame(&[200]).encode(),
            Handler::handle_frame(&|_req: Request| Response::Pong, &[200]).encode(),
        );
    }
}
