//! Sharded in-memory key-value engine.

use crate::{KvStore, StoreError};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Number of shards; a small power of two balancing contention vs memory.
const SHARDS: usize = 16;

/// In-memory sharded store. Shards by key hash to keep writer contention low
/// under the multi-threaded load generator; within a shard a `BTreeMap`
/// gives cheap prefix scans.
pub struct MemKv {
    shards: Vec<RwLock<BTreeMap<Vec<u8>, Vec<u8>>>>,
}

impl Default for MemKv {
    fn default() -> Self {
        Self::new()
    }
}

impl MemKv {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemKv {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
        }
    }

    fn shard(&self, key: &[u8]) -> &RwLock<BTreeMap<Vec<u8>, Vec<u8>>> {
        // FNV-1a over the key; cheap and adequate for shard selection.
        let mut h = 0xcbf29ce484222325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.shards[(h as usize) % SHARDS]
    }

    /// Total number of stored keys (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate total bytes held (keys + values) — used by the Table 2
    /// index-size accounting.
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .iter()
                    .map(|(k, v)| k.len() + v.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

impl KvStore for MemKv {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.shard(key).read().get(key).cloned())
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.shard(key).write().insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.shard(key).write().remove(key);
        Ok(())
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>, StoreError> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.read();
            // Range from the prefix forward; stop at the first non-match.
            for (k, v) in map.range(prefix.to_vec()..) {
                if !k.starts_with(prefix) {
                    break;
                }
                out.push((k.clone(), v.clone()));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_basic() {
        conformance::basic_ops(&MemKv::new());
    }

    #[test]
    fn conformance_scan() {
        conformance::prefix_scan(&MemKv::new());
    }

    #[test]
    fn conformance_binary() {
        conformance::binary_safety(&MemKv::new());
    }

    #[test]
    fn conformance_empty_value() {
        conformance::empty_value(&MemKv::new());
    }

    #[test]
    fn len_and_bytes_track_contents() {
        let kv = MemKv::new();
        assert!(kv.is_empty());
        kv.put(b"k1", &[0u8; 100]).unwrap();
        kv.put(b"k2", &[0u8; 50]).unwrap();
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.approx_bytes(), 2 + 100 + 2 + 50);
        kv.delete(b"k1").unwrap();
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn concurrent_writers() {
        use std::sync::Arc;
        let kv = Arc::new(MemKv::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let kv = kv.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let key = format!("t{t}/k{i}");
                        kv.put(key.as_bytes(), &[t as u8]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.len(), 8 * 500);
        for t in 0..8 {
            assert_eq!(
                kv.scan_prefix(format!("t{t}/").as_bytes()).unwrap().len(),
                500
            );
        }
    }
}
