//! An operation-counting decorator over any [`KvStore`].
//!
//! The sharded service layer (`timecrypt-service`) wraps its shared backend
//! in a [`MeteredKv`] so `Request::Stats` can report how hard the storage
//! tier is being driven — the reproduction's stand-in for the Cassandra-side
//! metrics the paper's deployment would export (§4.6).
//!
//! The decorator also feeds per-request tracing: each operation opens a
//! `timecrypt-obs` stage span (`store.get`, `store.put`, ...), which
//! aggregates store time into the active request scope's breakdown. With
//! no scope active on the thread the span is free (no clock read), so
//! the hot path stays untouched when tracing is idle.

use crate::{KvStore, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use timecrypt_obs::trace;

/// Point-in-time snapshot of a [`MeteredKv`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// `get` calls.
    pub gets: u64,
    /// `put` calls.
    pub puts: u64,
    /// `delete` calls.
    pub deletes: u64,
    /// `scan_prefix` calls.
    pub scans: u64,
    /// Total value bytes read by `get` hits.
    pub bytes_read: u64,
    /// Total value bytes written by `put`.
    pub bytes_written: u64,
}

/// A [`KvStore`] decorator counting operations and value bytes. Counters are
/// relaxed atomics: cheap enough for the ingest hot path, and exactness
/// under concurrency is not required for monitoring.
pub struct MeteredKv {
    inner: Arc<dyn KvStore>,
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    scans: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl MeteredKv {
    /// Wraps a store.
    pub fn new(inner: Arc<dyn KvStore>) -> Self {
        MeteredKv {
            inner,
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        }
    }

    /// Snapshots the counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn KvStore> {
        &self.inner
    }
}

impl KvStore for MeteredKv {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let _span = trace::stage("store.get");
        self.gets.fetch_add(1, Ordering::Relaxed);
        let v = self.inner.get(key)?;
        if let Some(v) = &v {
            self.bytes_read.fetch_add(v.len() as u64, Ordering::Relaxed);
        }
        Ok(v)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let _span = trace::stage("store.put");
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        self.inner.put(key, value)
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        let _span = trace::stage("store.delete");
        self.deletes.fetch_add(1, Ordering::Relaxed);
        self.inner.delete(key)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>, StoreError> {
        let _span = trace::stage("store.scan");
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.inner.scan_prefix(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use crate::MemKv;

    #[test]
    fn conforms() {
        let kv = || MeteredKv::new(Arc::new(MemKv::new()));
        conformance::basic_ops(&kv());
        conformance::prefix_scan(&kv());
        conformance::binary_safety(&kv());
        conformance::empty_value(&kv());
    }

    #[test]
    fn counts_operations_and_bytes() {
        let kv = MeteredKv::new(Arc::new(MemKv::new()));
        kv.put(b"k", b"12345").unwrap();
        kv.get(b"k").unwrap();
        kv.get(b"missing").unwrap();
        kv.scan_prefix(b"").unwrap();
        kv.delete(b"k").unwrap();
        let c = kv.counters();
        assert_eq!((c.gets, c.puts, c.deletes, c.scans), (2, 1, 1, 1));
        assert_eq!((c.bytes_read, c.bytes_written), (5, 5));
    }
}
