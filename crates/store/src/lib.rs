//! Key-value storage engines (the paper's Cassandra substitute).
//!
//! TimeCrypt "can be plugged-in with any scalable key-value store for
//! persisting data chunks and statistical indices" (§4.6). The prototype
//! used Cassandra; this reproduction provides three interchangeable engines
//! behind the [`KvStore`] trait:
//!
//! * [`MemKv`] — sharded in-memory hash map (the fast path; what the
//!   co-located Cassandra + row-cache deployment approximates),
//! * [`LogKv`] — persistent append-only log with an in-memory index and
//!   crash-recovery replay (durability),
//! * [`LatencyKv`] — a decorator injecting configurable per-operation
//!   latency to model a remote storage tier (the DevOps deployment where
//!   Cassandra runs on a separate machine).
//!
//! Keys are arbitrary byte strings; TimeCrypt computes chunk/index-node keys
//! on the fly from `(stream id, temporal range)` without storing references
//! (§4.6 "storage model").

pub mod latency;
pub mod log;
pub mod mem;
pub mod metered;

pub use latency::LatencyKv;
pub use log::{Durability, LogKv};
pub use mem::MemKv;
pub use metered::{MeteredKv, StoreCounters};

use std::sync::Arc;

/// Storage error type.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (LogKv).
    Io(std::io::Error),
    /// Log file corrupt at recovery.
    Corrupt(&'static str),
    /// Log file corrupt at recovery, with the byte offset of the damage.
    /// Distinct from a torn tail (which is truncated and warned about):
    /// this means valid data *follows* the damage, so resuming would
    /// silently drop history.
    CorruptAt {
        /// What failed to validate.
        what: &'static str,
        /// Byte offset of the first invalid record.
        offset: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "storage log corrupt: {m}"),
            StoreError::CorruptAt { what, offset } => {
                write!(f, "storage log corrupt at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Minimal key-value interface the server engine needs: point get/put/delete
/// plus a prefix scan for stream enumeration and range deletion.
pub trait KvStore: Send + Sync {
    /// Fetches the value stored under `key`.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError>;
    /// Stores `value` under `key`, replacing any previous value.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError>;
    /// Removes `key`. Removing an absent key is not an error.
    fn delete(&self, key: &[u8]) -> Result<(), StoreError>;
    /// Returns all `(key, value)` pairs whose key starts with `prefix`,
    /// in unspecified order.
    fn scan_prefix(&self, prefix: &[u8]) -> Result<KvPairs, StoreError>;
}

/// Shared handles delegate, so decorators can wrap an `Arc<dyn KvStore>`
/// (e.g. the fault-injection layer) without a newtype at every call site.
impl<S: KvStore + ?Sized> KvStore for Arc<S> {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        (**self).get(key)
    }
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        (**self).put(key, value)
    }
    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        (**self).delete(key)
    }
    fn scan_prefix(&self, prefix: &[u8]) -> Result<KvPairs, StoreError> {
        (**self).scan_prefix(prefix)
    }
}

/// Owned `(key, value)` pairs, as returned by [`KvStore::scan_prefix`].
pub type KvPairs = Vec<(Vec<u8>, Vec<u8>)>;

/// Shared handle to a store.
pub type SharedKv = Arc<dyn KvStore>;

#[cfg(test)]
pub(crate) mod conformance {
    //! A conformance suite every engine must pass; each engine's test module
    //! invokes it.
    use super::KvStore;

    pub fn basic_ops(kv: &dyn KvStore) {
        assert_eq!(kv.get(b"missing").unwrap(), None);
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        assert_eq!(kv.get(b"a").unwrap(), Some(b"1".to_vec()));
        kv.put(b"a", b"1b").unwrap();
        assert_eq!(kv.get(b"a").unwrap(), Some(b"1b".to_vec()));
        kv.delete(b"a").unwrap();
        assert_eq!(kv.get(b"a").unwrap(), None);
        kv.delete(b"a").unwrap(); // idempotent
        assert_eq!(kv.get(b"b").unwrap(), Some(b"2".to_vec()));
    }

    pub fn prefix_scan(kv: &dyn KvStore) {
        kv.put(b"s/1/x", b"a").unwrap();
        kv.put(b"s/1/y", b"b").unwrap();
        kv.put(b"s/2/x", b"c").unwrap();
        kv.put(b"t/1", b"d").unwrap();
        let mut hits = kv.scan_prefix(b"s/1/").unwrap();
        hits.sort();
        assert_eq!(
            hits,
            vec![
                (b"s/1/x".to_vec(), b"a".to_vec()),
                (b"s/1/y".to_vec(), b"b".to_vec()),
            ]
        );
        assert_eq!(kv.scan_prefix(b"s/").unwrap().len(), 3);
        assert_eq!(kv.scan_prefix(b"zzz").unwrap().len(), 0);
        // Empty prefix = everything.
        assert_eq!(kv.scan_prefix(b"").unwrap().len(), 4);
    }

    pub fn binary_safety(kv: &dyn KvStore) {
        let key = [0u8, 255, 10, 13, 0];
        let val = vec![0u8; 1024];
        kv.put(&key, &val).unwrap();
        assert_eq!(kv.get(&key).unwrap(), Some(val));
    }

    pub fn empty_value(kv: &dyn KvStore) {
        kv.put(b"empty", b"").unwrap();
        assert_eq!(kv.get(b"empty").unwrap(), Some(Vec::new()));
    }
}
