//! Persistent append-only log engine with checksummed crash recovery.
//!
//! File layout: an 8-byte magic header (`TCLOG2\r\n` — the `\r\n` catches
//! text-mode mangling, PNG-style) followed by records:
//!
//! ```text
//! op(1) | seq(1) | key_len(u32 le) | val_len(u32 le) | key | value | crc32(u32 le)
//! ```
//!
//! `op` is 0 = put, 1 = delete; `seq` is a wrapping per-record sequence
//! byte; the CRC32 (IEEE) footer covers everything before it. On open the
//! log is replayed to rebuild the in-memory index, and the footer + the
//! sequence byte let replay tell two very different failures apart:
//!
//! * **Torn tail** — the final record is incomplete or fails its CRC and
//!   nothing valid follows it: a crash mid-append. Recovery truncates the
//!   tail and warns with the byte offset (WAL semantics; the record was
//!   never acked, so nothing durable is lost).
//! * **Mid-file corruption** — an invalid record that is *followed* by a
//!   valid one, or a record whose CRC passes but whose sequence byte
//!   breaks the chain: bit rot or a spliced file. Recovery refuses with
//!   [`StoreError::CorruptAt`] carrying the offset, because silently
//!   resuming would drop every later record (the pre-CRC format treated
//!   this exactly like a torn tail and lost history silently).
//!
//! Durability is a three-position knob ([`Durability`]): `Buffered`
//! (bytes may sit in the `BufWriter`), `Flush` (write(2) per op — survives
//! process death, not power loss; the historical behaviour and still the
//! `open` default), and `Fsync` (group-commit `fdatasync` before ack —
//! survives kill-9 and power loss; the node binary's default). Under
//! `Fsync`, concurrent writers serialize appends on the inner lock but
//! share fsyncs: each waiter checks the synced watermark and only issues
//! the syscall if its record is not already covered.
//!
//! Legacy logs written by the pre-CRC format (no magic) are replayed with
//! the old parser, then rewritten in-place to the checksummed format
//! before the store opens.

use crate::{KvStore, StoreError};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use timecrypt_obs::{tc_error, tc_warn};

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

/// File magic for the checksummed format ("version 2").
const MAGIC: &[u8; 8] = b"TCLOG2\r\n";
/// Fixed bytes before the key: op, seq, key_len, val_len.
const HDR: usize = 10;
/// CRC32 footer bytes.
const FOOTER: usize = 4;

/// How durable an acked `put`/`delete` is.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// Record bytes may remain in the userspace write buffer. Fastest;
    /// an acked write can vanish if the *process* dies.
    Buffered,
    /// `write(2)` per op: bytes reach the OS page cache before ack.
    /// Survives process death (kill -9), not power loss. The historical
    /// behaviour and the [`LogKv::open`] default.
    #[default]
    Flush,
    /// Group-commit `fdatasync` before ack: survives power loss. The
    /// `timecrypt-node` default.
    Fsync,
}

// -------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — hand-rolled because the
// build is offline; table is computed at compile time.

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// Streaming CRC32 update; start from `0xFFFF_FFFF`, finish with `!crc`.
#[inline]
fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// One-shot CRC32 of `data` (exposed for tests and tooling).
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, data)
}

// -------------------------------------------------------------------------

struct Inner {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    writer: BufWriter<File>,
    /// Sequence byte the next record will carry (wrapping).
    next_seq: u8,
    /// Records appended since open (monotonic; group-commit watermark).
    appended: u64,
}

/// The group-commit state: highest `appended` value known fsynced, plus a
/// second handle to the log fd so fsync never blocks appenders holding
/// the inner lock. Lock order where both are held: inner → sync (compact
/// swaps the handle); `commit` takes only this lock.
struct SyncState {
    synced: u64,
    file: File,
}

/// Append-only persistent store.
pub struct LogKv {
    path: PathBuf,
    durability: Durability,
    inner: Mutex<Inner>,
    /// Records whose bytes reached the fd (flushed) — published after the
    /// inner lock flushes, read by `commit` before fsync to learn what
    /// the syscall will cover.
    flushed: AtomicU64,
    sync_state: Mutex<SyncState>,
}

impl LogKv {
    /// Opens (or creates) a log file with the default [`Durability::Flush`],
    /// replaying its contents.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(path, Durability::default())
    }

    /// Opens (or creates) a log file with an explicit durability mode.
    ///
    /// Fails with [`StoreError::CorruptAt`] if replay finds mid-file
    /// corruption (see the module docs for the torn-tail distinction).
    pub fn open_with(path: impl AsRef<Path>, durability: Durability) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut buf = Vec::new();
        if path.exists() {
            File::open(&path)?.read_to_end(&mut buf)?;
        }

        if !buf.is_empty() && !buf.starts_with(MAGIC) {
            // Legacy pre-CRC file: replay with the old parser, then
            // rewrite checksummed so every later open verifies.
            let map = replay_legacy(&path, &buf)?;
            let (writer, file, next_seq) = write_snapshot(&path, &map, durability)?;
            return Ok(Self::assemble(
                path, durability, map, writer, file, next_seq,
            ));
        }

        let mut map = BTreeMap::new();
        let mut next_seq: u8 = 0;
        let mut valid_len = MAGIC.len().min(buf.len()) as u64;
        if buf.len() > MAGIC.len() {
            let (_records, seq, tail) = replay(&path, &buf, &mut map)?;
            next_seq = seq;
            valid_len = tail;
        }

        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .read(true)
            .open(&path)?;
        // Truncate any torn tail, then position at the end.
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        let mut writer = BufWriter::new(file);
        if valid_len < MAGIC.len() as u64 {
            writer.write_all(MAGIC)?;
            writer.flush()?;
        }
        let sync_file = writer.get_ref().try_clone()?;
        if durability == Durability::Fsync {
            sync_file.sync_data()?;
            timecrypt_obs::counters::fsync_recorded();
        }
        Ok(Self::assemble(
            path, durability, map, writer, sync_file, next_seq,
        ))
    }

    fn assemble(
        path: PathBuf,
        durability: Durability,
        map: BTreeMap<Vec<u8>, Vec<u8>>,
        writer: BufWriter<File>,
        sync_file: File,
        next_seq: u8,
    ) -> Self {
        LogKv {
            path,
            durability,
            inner: Mutex::new(Inner {
                map,
                writer,
                next_seq,
                appended: 0,
            }),
            flushed: AtomicU64::new(0),
            sync_state: Mutex::new(SyncState {
                synced: 0,
                file: sync_file,
            }),
        }
    }

    /// Appends one record under the inner lock. Returns the record's
    /// monotonic append number for group commit.
    fn append(
        inner: &mut Inner,
        durability: Durability,
        op: u8,
        key: &[u8],
        value: &[u8],
    ) -> Result<u64, StoreError> {
        let mut hdr = [0u8; HDR];
        hdr[0] = op;
        hdr[1] = inner.next_seq;
        hdr[2..6].copy_from_slice(&(key.len() as u32).to_le_bytes());
        hdr[6..10].copy_from_slice(&(value.len() as u32).to_le_bytes());
        let mut crc = 0xFFFF_FFFFu32;
        crc = crc32_update(crc, &hdr);
        crc = crc32_update(crc, key);
        crc = crc32_update(crc, value);
        let w = &mut inner.writer;
        w.write_all(&hdr)?;
        w.write_all(key)?;
        w.write_all(value)?;
        w.write_all(&(!crc).to_le_bytes())?;
        if durability != Durability::Buffered {
            w.flush()?;
        }
        inner.next_seq = inner.next_seq.wrapping_add(1);
        inner.appended += 1;
        Ok(inner.appended)
    }

    /// Group-commit fsync: make append number `my` durable, sharing the
    /// syscall with every other record flushed before it started.
    fn commit(&self, my: u64) -> Result<(), StoreError> {
        if self.durability != Durability::Fsync {
            return Ok(());
        }
        let mut sync = self.sync_state.lock();
        if sync.synced >= my {
            return Ok(()); // another waiter's fsync already covered us
        }
        // Everything flushed to the fd before the syscall starts is
        // durable when it returns; snapshot the watermark first.
        let covered = self.flushed.load(Ordering::Acquire);
        sync.file.sync_data()?;
        timecrypt_obs::counters::fsync_recorded();
        sync.synced = sync.synced.max(covered);
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured durability mode.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if there are no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rewrites the log to contain only live records (space reclamation for
    /// data-decay workloads, §4.5 "data decay").
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let (writer, file, next_seq) = write_snapshot(&self.path, &inner.map, self.durability)?;
        inner.writer = writer;
        inner.next_seq = next_seq;
        // The rewritten file starts a fresh fd: swap the fsync handle and
        // mark everything appended so far as covered by the rewrite.
        let mut sync = self.sync_state.lock();
        sync.file = file;
        sync.synced = inner.appended;
        self.flushed.store(inner.appended, Ordering::Release);
        Ok(())
    }
}

impl KvStore for LogKv {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.inner.lock().map.get(key).cloned())
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let my = {
            let mut inner = self.inner.lock();
            let my = Self::append(&mut inner, self.durability, OP_PUT, key, value)?;
            inner.map.insert(key.to_vec(), value.to_vec());
            self.flushed.store(my, Ordering::Release);
            my
        };
        self.commit(my)
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        let my = {
            let mut inner = self.inner.lock();
            let my = Self::append(&mut inner, self.durability, OP_DELETE, key, &[])?;
            inner.map.remove(key);
            self.flushed.store(my, Ordering::Release);
            my
        };
        self.commit(my)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>, StoreError> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for (k, v) in inner.map.range(prefix.to_vec()..) {
            if !k.starts_with(prefix) {
                break;
            }
            out.push((k.clone(), v.clone()));
        }
        Ok(out)
    }
}

// -------------------------------------------------------------------------
// Replay.

/// A record parsed out of the buffer, or why parsing stopped.
enum Parsed<'a> {
    Record {
        op: u8,
        seq: u8,
        key: &'a [u8],
        value: &'a [u8],
        consumed: usize,
    },
    /// Too few bytes for a complete record (header truncated or claimed
    /// extent runs past the end of the buffer).
    Short,
    /// A complete extent whose CRC footer does not match, or an unknown
    /// op byte under a valid CRC.
    Bad,
}

fn parse_v2(buf: &[u8]) -> Parsed<'_> {
    if buf.len() < HDR + FOOTER {
        return Parsed::Short;
    }
    let op = buf[0];
    let seq = buf[1];
    let Some(klen) = buf
        .get(2..6)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
    else {
        return Parsed::Short;
    };
    let Some(vlen) = buf
        .get(6..10)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
    else {
        return Parsed::Short;
    };
    let (klen, vlen) = (klen as usize, vlen as usize);
    let Some(total) = HDR
        .checked_add(klen)
        .and_then(|t| t.checked_add(vlen))
        .and_then(|t| t.checked_add(FOOTER))
    else {
        return Parsed::Bad; // lengths overflow usize: impossible extent
    };
    if buf.len() < total {
        return Parsed::Short;
    }
    let body_end = total - FOOTER;
    let Some(footer) = buf.get(body_end..total).and_then(|b| b.try_into().ok()) else {
        return Parsed::Short;
    };
    if crc32(&buf[..body_end]) != u32::from_le_bytes(footer) {
        return Parsed::Bad;
    }
    if op != OP_PUT && op != OP_DELETE {
        return Parsed::Bad;
    }
    Parsed::Record {
        op,
        seq,
        key: &buf[HDR..HDR + klen],
        value: &buf[HDR + klen..body_end],
        consumed: total,
    }
}

/// Does any complete, CRC-valid record start anywhere in `buf`? Used to
/// tell a torn tail (no) from mid-file corruption (yes) after a parse
/// failure. A CRC collision on arbitrary garbage is a 2^-32 event per
/// offset; the sequence-byte chain check in `replay` backstops splices.
fn any_valid_record_after(buf: &[u8]) -> bool {
    (0..buf.len()).any(|q| matches!(parse_v2(&buf[q..]), Parsed::Record { .. }))
}

/// Replays a v2 buffer into `map`. Returns `(records, next_seq, tail)`
/// where `tail` is the byte length of the valid prefix (magic included).
fn replay(
    path: &Path,
    buf: &[u8],
    map: &mut BTreeMap<Vec<u8>, Vec<u8>>,
) -> Result<(u64, u8, u64), StoreError> {
    let mut pos = MAGIC.len();
    let mut records = 0u64;
    let mut next_seq: u8 = 0;
    while pos < buf.len() {
        match parse_v2(&buf[pos..]) {
            Parsed::Record {
                op,
                seq,
                key,
                value,
                consumed,
            } => {
                if seq != next_seq {
                    // Valid CRC but a broken sequence chain: records were
                    // lost or spliced *before* this point.
                    return Err(StoreError::CorruptAt {
                        what: "record sequence chain broken",
                        offset: pos as u64,
                    });
                }
                match op {
                    OP_PUT => {
                        map.insert(key.to_vec(), value.to_vec());
                    }
                    _ => {
                        map.remove(key);
                    }
                }
                next_seq = next_seq.wrapping_add(1);
                records += 1;
                pos += consumed;
            }
            Parsed::Short | Parsed::Bad => {
                if any_valid_record_after(&buf[pos + 1..]) {
                    return Err(StoreError::CorruptAt {
                        what: "invalid record followed by valid data",
                        offset: pos as u64,
                    });
                }
                tc_warn!(
                    "store.log",
                    "torn tail: truncating {} byte(s) at offset {} path={}",
                    buf.len() - pos,
                    pos,
                    path.display()
                );
                break;
            }
        }
    }
    Ok((records, next_seq, pos as u64))
}

/// Replays a legacy (pre-CRC, no-magic) file. Unlike the historical
/// parser, leftover bytes that are not a clean end are *reported* with
/// their offset instead of being silently treated as one.
fn replay_legacy(path: &Path, buf: &[u8]) -> Result<BTreeMap<Vec<u8>, Vec<u8>>, StoreError> {
    let mut map = BTreeMap::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let Some((op, key, value, consumed)) = parse_legacy(&buf[pos..]) else {
            tc_error!(
                "store.log",
                "legacy log: discarding {} unparseable byte(s) at offset {} path={}",
                buf.len() - pos,
                pos,
                path.display()
            );
            break;
        };
        match op {
            OP_PUT => {
                map.insert(key.to_vec(), value.to_vec());
            }
            OP_DELETE => {
                map.remove(key);
            }
            _ => {
                return Err(StoreError::CorruptAt {
                    what: "unknown op byte in legacy log",
                    offset: pos as u64,
                })
            }
        }
        pos += consumed;
    }
    Ok(map)
}

/// Legacy record format: `op(1) | key_len(u32 le) | val_len(u32 le) | key | value`.
fn parse_legacy(buf: &[u8]) -> Option<(u8, &[u8], &[u8], usize)> {
    if buf.len() < 9 {
        return None;
    }
    let op = buf[0];
    let klen = u32::from_le_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
    let vlen = u32::from_le_bytes(buf.get(5..9)?.try_into().ok()?) as usize;
    let total = 9usize.checked_add(klen)?.checked_add(vlen)?;
    if buf.len() < total {
        return None;
    }
    Some((op, &buf[9..9 + klen], &buf[9 + klen..total], total))
}

/// Writes `map` as a fresh checksummed log (magic + one put per pair) to
/// a temp file, atomically renames it over `path`, and returns a writer
/// positioned at the end, a second handle for fsync, and the next
/// sequence byte. Under `Fsync` the snapshot and its directory entry are
/// both synced before the rename is trusted.
fn write_snapshot(
    path: &Path,
    map: &BTreeMap<Vec<u8>, Vec<u8>>,
    durability: Durability,
) -> Result<(BufWriter<File>, File, u8), StoreError> {
    let tmp_path = path.with_extension("compact");
    {
        let tmp = File::create(&tmp_path)?;
        let mut w = BufWriter::new(tmp);
        w.write_all(MAGIC)?;
        let mut seq: u8 = 0;
        for (k, v) in map {
            let mut hdr = [0u8; HDR];
            hdr[0] = OP_PUT;
            hdr[1] = seq;
            hdr[2..6].copy_from_slice(&(k.len() as u32).to_le_bytes());
            hdr[6..10].copy_from_slice(&(v.len() as u32).to_le_bytes());
            let mut crc = 0xFFFF_FFFFu32;
            crc = crc32_update(crc, &hdr);
            crc = crc32_update(crc, k);
            crc = crc32_update(crc, v);
            w.write_all(&hdr)?;
            w.write_all(k)?;
            w.write_all(v)?;
            w.write_all(&(!crc).to_le_bytes())?;
            seq = seq.wrapping_add(1);
        }
        w.flush()?;
        if durability == Durability::Fsync {
            w.get_ref().sync_data()?;
            timecrypt_obs::counters::fsync_recorded();
        }
    }
    std::fs::rename(&tmp_path, path)?;
    if durability == Durability::Fsync {
        // Make the rename itself durable.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    let mut file = OpenOptions::new().write(true).read(true).open(path)?;
    file.seek(SeekFrom::End(0))?;
    let sync_file = file.try_clone()?;
    Ok((BufWriter::new(file), sync_file, (map.len() % 256) as u8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("timecrypt-logkv-{}-{name}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_check_value() {
        // The CRC32 (IEEE) check value from the CRC catalogue.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn conformance_basic() {
        conformance::basic_ops(&LogKv::open(tmp("basic")).unwrap());
    }

    #[test]
    fn conformance_scan() {
        conformance::prefix_scan(&LogKv::open(tmp("scan")).unwrap());
    }

    #[test]
    fn conformance_binary() {
        conformance::binary_safety(&LogKv::open(tmp("bin")).unwrap());
    }

    #[test]
    fn conformance_empty_value() {
        conformance::empty_value(&LogKv::open(tmp("empty")).unwrap());
    }

    #[test]
    fn conformance_fsync_mode() {
        conformance::basic_ops(&LogKv::open_with(tmp("fsync"), Durability::Fsync).unwrap());
    }

    #[test]
    fn conformance_buffered_mode() {
        conformance::basic_ops(&LogKv::open_with(tmp("buffered"), Durability::Buffered).unwrap());
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmp("persist");
        {
            let kv = LogKv::open(&path).unwrap();
            kv.put(b"k1", b"v1").unwrap();
            kv.put(b"k2", b"v2").unwrap();
            kv.delete(b"k1").unwrap();
            kv.put(b"k3", b"v3-final").unwrap();
        }
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.get(b"k1").unwrap(), None);
        assert_eq!(kv.get(b"k2").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(kv.get(b"k3").unwrap(), Some(b"v3-final".to_vec()));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn torn_tail_record_truncated() {
        let path = tmp("torn");
        {
            let kv = LogKv::open(&path).unwrap();
            kv.put(b"good", b"value").unwrap();
        }
        // Simulate a crash mid-append: write a partial record header.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[OP_PUT, 1, 200, 0, 0]).unwrap();
        }
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.get(b"good").unwrap(), Some(b"value".to_vec()));
        // Store still writable after recovery.
        kv.put(b"after", b"crash").unwrap();
        drop(kv);
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.get(b"after").unwrap(), Some(b"crash".to_vec()));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_hard_error_with_offset() {
        let path = tmp("midcorrupt");
        {
            let kv = LogKv::open(&path).unwrap();
            kv.put(b"first", b"valuevaluevalue").unwrap();
            kv.put(b"second", b"other").unwrap();
        }
        // Flip one byte inside the first record's value region. The first
        // record starts right after the magic, at offset 8.
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = MAGIC.len() + HDR + 5 + 3; // inside "valuevaluevalue"
        bytes[victim] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match LogKv::open(&path) {
            Err(StoreError::CorruptAt { offset, .. }) => {
                assert_eq!(offset, MAGIC.len() as u64, "offset should be record 0");
            }
            other => panic!("expected CorruptAt, got {:?}", other.map(|kv| kv.len())),
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn spliced_sequence_chain_is_hard_error() {
        let path_a = tmp("splice-a");
        let path_b = tmp("splice-b");
        {
            let a = LogKv::open(&path_a).unwrap();
            a.put(b"a", b"1").unwrap();
            let b = LogKv::open(&path_b).unwrap();
            b.put(b"b", b"2").unwrap();
        }
        // Both records carry seq 0; appending B's record to A breaks the
        // chain even though its CRC is valid.
        let a_bytes = std::fs::read(&path_a).unwrap();
        let b_bytes = std::fs::read(&path_b).unwrap();
        let mut spliced = a_bytes.clone();
        spliced.extend_from_slice(&b_bytes[MAGIC.len()..]);
        std::fs::write(&path_a, &spliced).unwrap();
        match LogKv::open(&path_a) {
            Err(StoreError::CorruptAt { offset, .. }) => {
                assert_eq!(offset, a_bytes.len() as u64);
            }
            other => panic!("expected CorruptAt, got {:?}", other.map(|kv| kv.len())),
        }
        std::fs::remove_file(path_a).unwrap();
        std::fs::remove_file(path_b).unwrap();
    }

    #[test]
    fn legacy_format_upgrades_on_open() {
        let path = tmp("legacy");
        // Hand-write two records in the pre-CRC format (no magic).
        let mut bytes = Vec::new();
        for (k, v) in [(&b"old1"[..], &b"val1"[..]), (&b"old2"[..], &b"val2"[..])] {
            bytes.push(OP_PUT);
            bytes.extend_from_slice(&(k.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&(v.len() as u32).to_le_bytes());
            bytes.extend_from_slice(k);
            bytes.extend_from_slice(v);
        }
        std::fs::write(&path, &bytes).unwrap();
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.get(b"old1").unwrap(), Some(b"val1".to_vec()));
        assert_eq!(kv.get(b"old2").unwrap(), Some(b"val2".to_vec()));
        kv.put(b"new", b"post-upgrade").unwrap();
        drop(kv);
        // The file is now checksummed: magic present, reopen verifies.
        assert!(std::fs::read(&path).unwrap().starts_with(MAGIC));
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.len(), 3);
        assert_eq!(kv.get(b"new").unwrap(), Some(b"post-upgrade".to_vec()));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn fsync_mode_counts_fsyncs() {
        let path = tmp("fsynccount");
        let before = timecrypt_obs::counters::fsyncs_total();
        let kv = LogKv::open_with(&path, Durability::Fsync).unwrap();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        assert!(
            timecrypt_obs::counters::fsyncs_total() >= before + 2,
            "each uncontended fsync-mode put must fsync"
        );
        drop(kv);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn compaction_preserves_live_data() {
        let path = tmp("compact");
        let kv = LogKv::open(&path).unwrap();
        for i in 0..100 {
            kv.put(format!("k{i}").as_bytes(), b"xxxxxxxxxxxxxxxx")
                .unwrap();
        }
        for i in 0..90 {
            kv.delete(format!("k{i}").as_bytes()).unwrap();
        }
        let size_before = std::fs::metadata(&path).unwrap().len();
        kv.compact().unwrap();
        let size_after = std::fs::metadata(&path).unwrap().len();
        assert!(
            size_after < size_before / 2,
            "{size_after} vs {size_before}"
        );
        assert_eq!(kv.len(), 10);
        kv.put(b"post-compact", b"1").unwrap();
        drop(kv);
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.len(), 11);
        assert_eq!(kv.get(b"k95").unwrap(), Some(b"xxxxxxxxxxxxxxxx".to_vec()));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn compaction_under_fsync_durability() {
        let path = tmp("compact-fsync");
        let kv = LogKv::open_with(&path, Durability::Fsync).unwrap();
        for i in 0..20 {
            kv.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        kv.compact().unwrap();
        kv.put(b"post", b"compact").unwrap();
        drop(kv);
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.len(), 21);
        std::fs::remove_file(path).unwrap();
    }

    // The satellite crash-recovery property: truncating a populated log
    // at EVERY byte offset and reopening must recover exactly the
    // records fully contained in the kept prefix, and the store must
    // accept appends afterwards. Record sets are proptest-generated; the
    // offset sweep inside each case is exhaustive.
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(8))]
        #[test]
        fn truncate_at_every_offset_recovers_longest_valid_prefix(
            recs in proptest::collection::vec(
                (proptest::collection::vec(proptest::any::<u8>(), 1..12),
                 proptest::collection::vec(proptest::any::<u8>(), 0..24)),
                1..5,
            )
        ) {
            truncation_sweep(&recs);
        }
    }

    fn truncation_sweep(recs: &[(Vec<u8>, Vec<u8>)]) {
        let path = tmp("sweep-src");
        {
            let kv = LogKv::open(&path).unwrap();
            for (k, v) in recs {
                kv.put(k, v).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Byte offset where each record ends, in append order.
        let mut ends = Vec::new();
        let mut pos = MAGIC.len();
        for (k, v) in recs {
            pos += HDR + k.len() + v.len() + FOOTER;
            ends.push(pos);
        }
        assert_eq!(pos, full.len());

        let cut_path = tmp("sweep-cut");
        for cut in 0..=full.len() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let kv = match LogKv::open(&cut_path) {
                Ok(kv) => kv,
                Err(e) => panic!("offset {cut}: truncated log must open, got {e}"),
            };
            // Expected: exactly the records whose extent fits in `cut`.
            let complete = ends.iter().filter(|&&e| e <= cut).count();
            let mut expect: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for (k, v) in &recs[..complete] {
                expect.insert(k.clone(), v.clone());
            }
            assert_eq!(
                kv.len(),
                expect.len(),
                "offset {cut}: wrong number of recovered keys"
            );
            for (k, v) in &expect {
                assert_eq!(
                    kv.get(k).unwrap().as_deref(),
                    Some(v.as_slice()),
                    "offset {cut}: wrong value recovered"
                );
            }
            // Post-recovery appends must round-trip across reopen.
            kv.put(b"post-recovery", b"ok").unwrap();
            drop(kv);
            let kv = LogKv::open(&cut_path).unwrap();
            assert_eq!(
                kv.get(b"post-recovery").unwrap(),
                Some(b"ok".to_vec()),
                "offset {cut}: post-recovery append lost"
            );
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&cut_path);
    }
}
