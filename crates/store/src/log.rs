//! Persistent append-only log engine with crash recovery.
//!
//! Record format: `op(1) | key_len(u32 le) | val_len(u32 le) | key | value`,
//! with `op` 0 = put, 1 = delete. On open, the log is replayed to rebuild
//! the in-memory index; a torn tail record (crash mid-write) is truncated
//! rather than treated as corruption, mirroring WAL recovery semantics.

use crate::{KvStore, StoreError};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

struct Inner {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    writer: BufWriter<File>,
}

/// Append-only persistent store.
pub struct LogKv {
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl LogKv {
    /// Opens (or creates) a log file, replaying its contents.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut map = BTreeMap::new();
        let mut valid_len = 0u64;
        if path.exists() {
            let mut file = File::open(&path)?;
            let mut buf = Vec::new();
            file.read_to_end(&mut buf)?;
            let mut pos = 0usize;
            // A parse failure means a torn tail (or the clean end).
            while let Some((op, key, value, consumed)) = Self::parse_record(&buf[pos..]) {
                match op {
                    OP_PUT => {
                        map.insert(key.to_vec(), value.to_vec());
                    }
                    OP_DELETE => {
                        map.remove(key);
                    }
                    _ => return Err(StoreError::Corrupt("unknown op byte")),
                }
                pos += consumed;
                valid_len = pos as u64;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .append(false)
            .write(true)
            .read(true)
            .open(&path)?;
        // Truncate any torn tail, then position at the end.
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(LogKv {
            path,
            inner: Mutex::new(Inner {
                map,
                writer: BufWriter::new(file),
            }),
        })
    }

    fn parse_record(buf: &[u8]) -> Option<(u8, &[u8], &[u8], usize)> {
        if buf.len() < 9 {
            return None;
        }
        let op = buf[0];
        let klen = u32::from_le_bytes(buf[1..5].try_into().ok()?) as usize;
        let vlen = u32::from_le_bytes(buf[5..9].try_into().ok()?) as usize;
        let total = 9usize.checked_add(klen)?.checked_add(vlen)?;
        if buf.len() < total {
            return None;
        }
        Some((op, &buf[9..9 + klen], &buf[9 + klen..total], total))
    }

    fn append(inner: &mut Inner, op: u8, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let w = &mut inner.writer;
        w.write_all(&[op])?;
        w.write_all(&(key.len() as u32).to_le_bytes())?;
        w.write_all(&(value.len() as u32).to_le_bytes())?;
        w.write_all(key)?;
        w.write_all(value)?;
        w.flush()?;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if there are no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rewrites the log to contain only live records (space reclamation for
    /// data-decay workloads, §4.5 "data decay").
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let tmp_path = self.path.with_extension("compact");
        {
            let tmp = File::create(&tmp_path)?;
            let mut w = BufWriter::new(tmp);
            for (k, v) in &inner.map {
                w.write_all(&[OP_PUT])?;
                w.write_all(&(k.len() as u32).to_le_bytes())?;
                w.write_all(&(v.len() as u32).to_le_bytes())?;
                w.write_all(k)?;
                w.write_all(v)?;
            }
            w.flush()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        let mut file = OpenOptions::new().write(true).read(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        inner.writer = BufWriter::new(file);
        Ok(())
    }
}

impl KvStore for LogKv {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.inner.lock().map.get(key).cloned())
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        Self::append(&mut inner, OP_PUT, key, value)?;
        inner.map.insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        Self::append(&mut inner, OP_DELETE, key, &[])?;
        inner.map.remove(key);
        Ok(())
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>, StoreError> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for (k, v) in inner.map.range(prefix.to_vec()..) {
            if !k.starts_with(prefix) {
                break;
            }
            out.push((k.clone(), v.clone()));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("timecrypt-logkv-{}-{name}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn conformance_basic() {
        conformance::basic_ops(&LogKv::open(tmp("basic")).unwrap());
    }

    #[test]
    fn conformance_scan() {
        conformance::prefix_scan(&LogKv::open(tmp("scan")).unwrap());
    }

    #[test]
    fn conformance_binary() {
        conformance::binary_safety(&LogKv::open(tmp("bin")).unwrap());
    }

    #[test]
    fn conformance_empty_value() {
        conformance::empty_value(&LogKv::open(tmp("empty")).unwrap());
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmp("persist");
        {
            let kv = LogKv::open(&path).unwrap();
            kv.put(b"k1", b"v1").unwrap();
            kv.put(b"k2", b"v2").unwrap();
            kv.delete(b"k1").unwrap();
            kv.put(b"k3", b"v3-final").unwrap();
        }
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.get(b"k1").unwrap(), None);
        assert_eq!(kv.get(b"k2").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(kv.get(b"k3").unwrap(), Some(b"v3-final".to_vec()));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn torn_tail_record_truncated() {
        let path = tmp("torn");
        {
            let kv = LogKv::open(&path).unwrap();
            kv.put(b"good", b"value").unwrap();
        }
        // Simulate a crash mid-append: write a partial record.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[OP_PUT, 200, 0, 0, 0]).unwrap(); // truncated header
        }
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.get(b"good").unwrap(), Some(b"value".to_vec()));
        // Store still writable after recovery.
        kv.put(b"after", b"crash").unwrap();
        drop(kv);
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.get(b"after").unwrap(), Some(b"crash".to_vec()));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn compaction_preserves_live_data() {
        let path = tmp("compact");
        let kv = LogKv::open(&path).unwrap();
        for i in 0..100 {
            kv.put(format!("k{i}").as_bytes(), b"xxxxxxxxxxxxxxxx")
                .unwrap();
        }
        for i in 0..90 {
            kv.delete(format!("k{i}").as_bytes()).unwrap();
        }
        let size_before = std::fs::metadata(&path).unwrap().len();
        kv.compact().unwrap();
        let size_after = std::fs::metadata(&path).unwrap().len();
        assert!(
            size_after < size_before / 2,
            "{size_after} vs {size_before}"
        );
        assert_eq!(kv.len(), 10);
        kv.put(b"post-compact", b"1").unwrap();
        drop(kv);
        let kv = LogKv::open(&path).unwrap();
        assert_eq!(kv.len(), 11);
        assert_eq!(kv.get(b"k95").unwrap(), Some(b"xxxxxxxxxxxxxxxx".to_vec()));
        std::fs::remove_file(path).unwrap();
    }
}
