//! Latency-injecting store decorator.
//!
//! Models a remote storage tier (the paper's DevOps deployment runs
//! Cassandra on a separate machine with ~0.6 ms network latency, §6). Wraps
//! any [`KvStore`] and sleeps a configurable duration per operation. Used by
//! the end-to-end benchmarks to separate engine cost from storage-tier cost.

use crate::{KvStore, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A [`KvStore`] decorator that injects fixed per-operation latency and
/// counts operations.
pub struct LatencyKv<S> {
    inner: S,
    latency: Duration,
    ops: AtomicU64,
}

impl<S: KvStore> LatencyKv<S> {
    /// Wraps `inner`, sleeping `latency` on every get/put/delete/scan.
    pub fn new(inner: S, latency: Duration) -> Self {
        LatencyKv {
            inner,
            latency,
            ops: AtomicU64::new(0),
        }
    }

    /// Total operations served.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn tick(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
    }
}

impl<S: KvStore> KvStore for LatencyKv<S> {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.tick();
        self.inner.get(key)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.tick();
        self.inner.put(key, value)
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.tick();
        self.inner.delete(key)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>, StoreError> {
        self.tick();
        self.inner.scan_prefix(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use crate::MemKv;
    use std::time::Instant;

    #[test]
    fn conformance_with_zero_latency() {
        // Fresh store per suite: the suites assume an empty keyspace.
        let fresh = || LatencyKv::new(MemKv::new(), Duration::ZERO);
        conformance::basic_ops(&fresh());
        conformance::prefix_scan(&fresh());
        conformance::binary_safety(&fresh());
        conformance::empty_value(&fresh());
    }

    #[test]
    fn counts_operations() {
        let kv = LatencyKv::new(MemKv::new(), Duration::ZERO);
        kv.put(b"a", b"1").unwrap();
        kv.get(b"a").unwrap();
        kv.delete(b"a").unwrap();
        kv.scan_prefix(b"").unwrap();
        assert_eq!(kv.op_count(), 4);
    }

    #[test]
    fn injects_latency() {
        let kv = LatencyKv::new(MemKv::new(), Duration::from_millis(5));
        let t = Instant::now();
        kv.get(b"x").unwrap();
        assert!(t.elapsed() >= Duration::from_millis(5));
    }
}
