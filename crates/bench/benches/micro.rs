//! Criterion microbenchmarks over every hot primitive: statistically robust
//! backing for the table/figure harness binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use timecrypt_baselines::{EcElGamal, Paillier};
use timecrypt_chunk::compress::{compress, decompress, Codec};
use timecrypt_chunk::DataPoint;
use timecrypt_core::dualkr::chain_walk;
use timecrypt_core::heac::{add_assign, decrypt_range_sum, HeacEncryptor};
use timecrypt_core::TreeKd;
use timecrypt_crypto::{AesGcm128, PrgKind, SecureRandom, Sha256};
use timecrypt_index::{AggTree, TreeConfig};
use timecrypt_store::MemKv;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data = vec![0xabu8; 1024];
    g.bench_function("sha256_1k", |b| {
        b.iter(|| {
            let mut h = Sha256::new();
            h.update(&data);
            std::hint::black_box(h.finalize())
        })
    });
    let gcm = AesGcm128::new(&[7u8; 16]);
    let nonce = [1u8; 12];
    let payload = vec![0x55u8; 4096];
    g.bench_function("aes_gcm_seal_4k", |b| {
        b.iter(|| std::hint::black_box(gcm.seal(&nonce, b"", &payload)))
    });
    g.finish();
}

fn bench_heac(c: &mut Criterion) {
    let mut g = c.benchmark_group("heac");
    let kd = TreeKd::new([7u8; 16], 30, PrgKind::Aes).unwrap();
    let enc = HeacEncryptor::new(&kd);
    g.bench_function("tree_derive_2e30", |b| {
        b.iter(|| std::hint::black_box(kd.leaf((1 << 30) - 1).unwrap()))
    });
    g.bench_function("encrypt_digest_w19", |b| {
        let digest = vec![7u64; 19];
        b.iter(|| std::hint::black_box(enc.encrypt_digest(12345, &digest).unwrap()))
    });
    let ct = enc.encrypt_digest(12345, &[7u64; 19]).unwrap();
    g.bench_function("decrypt_range_w19", |b| {
        b.iter(|| std::hint::black_box(decrypt_range_sum(&kd, 12345, 12346, &ct).unwrap()))
    });
    g.bench_function("hom_add_w19", |b| {
        let mut acc = vec![0u64; 19];
        b.iter(|| add_assign(&mut acc, &ct))
    });
    g.bench_function("dualkr_sqrt_2e30", |b| {
        let seed = [9u8; 32];
        b.iter(|| std::hint::black_box(chain_walk(&seed, 1 << 15)))
    });
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("index");
    g.sample_size(20);
    let tree: AggTree<Vec<u64>> =
        AggTree::open(Arc::new(MemKv::new()), 1, TreeConfig::default()).unwrap();
    for i in 0..100_000u64 {
        tree.append(vec![i, 1]).unwrap();
    }
    g.bench_function("query_worst_case_100k", |b| {
        b.iter(|| std::hint::black_box(tree.query(1, 99_999).unwrap()))
    });
    g.bench_function("query_aligned_100k", |b| {
        b.iter(|| std::hint::black_box(tree.query(0, 65_536).unwrap()))
    });
    g.bench_function("append", |b| {
        let kv = Arc::new(MemKv::new());
        let t: AggTree<Vec<u64>> = AggTree::open(kv, 2, TreeConfig::default()).unwrap();
        b.iter(|| t.append(vec![1, 1]).unwrap())
    });
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("compress");
    let points: Vec<DataPoint> = (0..500)
        .map(|i| DataPoint::new(i * 20, 70 + (i % 7)))
        .collect();
    for codec in [Codec::Delta, Codec::DeltaRle, Codec::Gorilla, Codec::Auto] {
        g.bench_function(format!("{codec:?}_500pts"), |b| {
            b.iter(|| std::hint::black_box(compress(codec, &points)))
        });
        let enc = compress(codec, &points);
        g.bench_function(format!("{codec:?}_decode"), |b| {
            b.iter(|| std::hint::black_box(decompress(&enc).unwrap()))
        });
    }
    g.finish();
}

fn bench_integrity(c: &mut Criterion) {
    use timecrypt_baselines::SigningKey;
    use timecrypt_integrity::{chunk_commitment, MerkleTree, SumLeaf, SumTree};
    let mut g = c.benchmark_group("integrity");
    g.sample_size(20);

    // Authenticated aggregation tree over 2^14 chunks, width-19 digests.
    let n = 1 << 14;
    let mut tree = SumTree::new();
    for i in 0..n as u64 {
        tree.push(SumLeaf {
            commitment: chunk_commitment(&i.to_le_bytes()),
            sum: (0..19u64).map(|j| i * 31 + j).collect(),
        })
        .unwrap();
    }
    let root = tree.root();
    g.bench_function("sumtree_prove_range_16k", |b| {
        b.iter(|| std::hint::black_box(tree.range_proof(1000, 9000, n).unwrap()))
    });
    let proof = tree.range_proof(1000, 9000, n).unwrap();
    g.bench_function("sumtree_verify_range_16k", |b| {
        b.iter(|| std::hint::black_box(proof.verify(&root).unwrap()))
    });

    let mut log = MerkleTree::new();
    for i in 0..n as u64 {
        log.push(&i.to_le_bytes());
    }
    g.bench_function("merkle_inclusion_16k", |b| {
        b.iter(|| std::hint::black_box(log.inclusion_proof(7777, n).unwrap()))
    });
    g.bench_function("merkle_root_incremental_16k", |b| {
        b.iter(|| std::hint::black_box(log.root()))
    });

    let mut rng = SecureRandom::from_seed_insecure(3);
    let key = SigningKey::generate(&mut rng);
    g.bench_function("ecdsa_p256_sign", |b| {
        b.iter_batched(
            || SecureRandom::from_seed_insecure(9),
            |mut r| std::hint::black_box(key.sign(b"root attestation", &mut r)),
            BatchSize::SmallInput,
        )
    });
    let sig = key.sign(b"root attestation", &mut rng);
    let vk = key.verifying_key();
    g.bench_function("ecdsa_p256_verify", |b| {
        b.iter(|| std::hint::black_box(vk.verify(b"root attestation", &sig)))
    });
    g.finish();
}

fn bench_live_records(c: &mut Criterion) {
    use timecrypt_chunk::SealedRecord;
    let mut g = c.benchmark_group("live");
    let kd = TreeKd::new([7u8; 16], 30, PrgKind::Aes).unwrap();
    g.bench_function("record_seal", |b| {
        b.iter_batched(
            || SecureRandom::from_seed_insecure(4),
            |mut r| {
                std::hint::black_box(
                    SealedRecord::seal(1, 5, 0, DataPoint::new(50_000, 72), &kd, &mut r).unwrap(),
                )
            },
            BatchSize::SmallInput,
        )
    });
    let mut rng = SecureRandom::from_seed_insecure(4);
    let rec = SealedRecord::seal(1, 5, 0, DataPoint::new(50_000, 72), &kd, &mut rng).unwrap();
    g.bench_function("record_open", |b| {
        b.iter(|| std::hint::black_box(rec.open(&kd).unwrap()))
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines");
    g.sample_size(10);
    let mut rng = SecureRandom::from_seed_insecure(1);
    let paillier = Paillier::generate(1024, &mut rng);
    g.bench_function("paillier1024_encrypt", |b| {
        b.iter_batched(
            || SecureRandom::from_seed_insecure(7),
            |mut r| std::hint::black_box(paillier.public.encrypt(42, &mut r)),
            BatchSize::SmallInput,
        )
    });
    let ct = paillier.public.encrypt(42, &mut rng);
    g.bench_function("paillier1024_add", |b| {
        b.iter(|| std::hint::black_box(paillier.public.add(&ct, &ct)))
    });
    let elgamal = EcElGamal::generate(1 << 16, &mut rng);
    g.bench_function("ecelgamal_encrypt", |b| {
        b.iter_batched(
            || SecureRandom::from_seed_insecure(7),
            |mut r| std::hint::black_box(elgamal.encrypt(42, &mut r)),
            BatchSize::SmallInput,
        )
    });
    let ect = elgamal.encrypt(42, &mut rng);
    g.bench_function("ecelgamal_add", |b| {
        b.iter(|| std::hint::black_box(EcElGamal::add(&ect, &ect)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_heac,
    bench_index,
    bench_compression,
    bench_baselines,
    bench_integrity,
    bench_live_records
);
criterion_main!(benches);
