//! Workload generators for the end-to-end experiments (§6 setup).
//!
//! * **mhealth** — a health-monitoring wearable reporting 12 metrics at
//!   50 Hz with Δ = 10 s chunks (≤ 500 points per chunk per metric).
//! * **DevOps** — a TSBS-style CPU monitoring fleet: 10 metrics × 100
//!   hosts, one reading per 10 s, Δ = 60 s chunks (6 records per chunk).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use timecrypt_chunk::{DataPoint, DigestOp, DigestSchema, StreamConfig};

/// mhealth generator: `metrics` streams at `rate_hz`, Δ = 10 s.
pub struct MHealthWorkload {
    rng: StdRng,
    /// Number of metrics per device (paper: 12).
    pub metrics: u32,
    /// Sampling rate (paper: 50 Hz).
    pub rate_hz: u32,
    /// Chunk interval (paper: 10 s).
    pub delta_ms: u64,
}

impl MHealthWorkload {
    /// The paper's configuration.
    pub fn paper(seed: u64) -> Self {
        MHealthWorkload {
            rng: StdRng::seed_from_u64(seed),
            metrics: 12,
            rate_hz: 50,
            delta_ms: 10_000,
        }
    }

    /// Stream configuration for metric `m` of device `device`.
    pub fn stream_config(&self, device: u64, m: u32) -> StreamConfig {
        let id = ((device as u128) << 32) | m as u128 | 1 << 100;
        StreamConfig {
            source: format!("device-{device}"),
            ..StreamConfig::new(id, format!("metric-{m}"), 0, self.delta_ms)
        }
    }

    /// Generates the points of chunk `chunk` for one stream: a plausible
    /// vital-sign walk (heart-rate-like around 70 with bounded wander).
    pub fn chunk_points(&mut self, chunk: u64) -> Vec<DataPoint> {
        let n = (self.rate_hz as u64 * self.delta_ms / 1000) as usize;
        let period_ms = 1000 / self.rate_hz as i64;
        let base_ts = chunk as i64 * self.delta_ms as i64;
        let mut v = 70i64 + self.rng.gen_range(-10i64..10);
        (0..n)
            .map(|i| {
                v = (v + self.rng.gen_range(-2i64..=2)).clamp(40, 200);
                DataPoint::new(base_ts + i as i64 * period_ms, v)
            })
            .collect()
    }
}

/// DevOps generator: CPU utilization per host, TSBS-style.
pub struct DevOpsWorkload {
    rng: StdRng,
    /// Hosts (paper: 100).
    pub hosts: u32,
    /// Metrics per host (paper: 10).
    pub metrics: u32,
    /// Reading interval (paper: 10 s).
    pub rate_ms: u64,
    /// Chunk interval (paper: 60 s → 6 records per chunk).
    pub delta_ms: u64,
}

impl DevOpsWorkload {
    /// The paper's configuration.
    pub fn paper(seed: u64) -> Self {
        DevOpsWorkload {
            rng: StdRng::seed_from_u64(seed),
            hosts: 100,
            metrics: 10,
            rate_ms: 10_000,
            delta_ms: 60_000,
        }
    }

    /// Stream configuration for `(host, metric)`. The schema includes a
    /// histogram with a 50% boundary so the paper's "percentage of machines
    /// above 50% utilization" query is answerable.
    pub fn stream_config(&self, host: u32, m: u32) -> StreamConfig {
        let id = ((host as u128) << 32) | m as u128 | 1 << 101;
        let schema = DigestSchema::new(vec![
            DigestOp::Sum,
            DigestOp::Count,
            DigestOp::Histogram { bounds: vec![50] },
        ]);
        StreamConfig {
            source: format!("host-{host}"),
            schema,
            ..StreamConfig::new(id, format!("cpu-{m}"), 0, self.delta_ms)
        }
    }

    /// Points of chunk `chunk` for one stream: utilization 0..100 with load
    /// plateaus.
    pub fn chunk_points(&mut self, chunk: u64) -> Vec<DataPoint> {
        let n = (self.delta_ms / self.rate_ms) as usize;
        let base_ts = chunk as i64 * self.delta_ms as i64;
        let plateau = self.rng.gen_range(5i64..95);
        (0..n)
            .map(|i| {
                let v = (plateau + self.rng.gen_range(-5i64..=5)).clamp(0, 100);
                DataPoint::new(base_ts + (i as u64 * self.rate_ms) as i64, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mhealth_chunk_shape() {
        let mut w = MHealthWorkload::paper(1);
        let pts = w.chunk_points(0);
        assert_eq!(pts.len(), 500, "50 Hz × 10 s");
        assert!(pts.iter().all(|p| (40..=200).contains(&p.value)));
        assert!(pts.windows(2).all(|ab| ab[0].ts < ab[1].ts));
        let cfg = w.stream_config(3, 7);
        assert_eq!(cfg.delta_ms, 10_000);
        // Points of chunk 2 land in chunk 2.
        let pts2 = w.chunk_points(2);
        assert!(pts2.iter().all(|p| cfg.chunk_of(p.ts) == Some(2)));
    }

    #[test]
    fn devops_chunk_shape() {
        let mut w = DevOpsWorkload::paper(2);
        let pts = w.chunk_points(0);
        assert_eq!(pts.len(), 6, "6 records per chunk");
        assert!(pts.iter().all(|p| (0..=100).contains(&p.value)));
        let cfg = w.stream_config(1, 1);
        assert_eq!(cfg.schema.width(), 1 + 1 + 2);
    }

    #[test]
    fn stream_ids_unique() {
        let mh = MHealthWorkload::paper(0);
        let dv = DevOpsWorkload::paper(0);
        let a = mh.stream_config(1, 2).id;
        let b = mh.stream_config(2, 1).id;
        let c = dv.stream_config(1, 2).id;
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = MHealthWorkload::paper(9);
        let mut b = MHealthWorkload::paper(9);
        assert_eq!(a.chunk_points(0), b.chunk_points(0));
    }
}
