//! Benchmark support library: workload generators and measurement helpers
//! shared by the table/figure harness binaries (see DESIGN.md §2 for the
//! experiment → binary map).

pub mod measure;
pub mod workload;

pub use measure::{format_duration, Timer};
pub use workload::{DevOpsWorkload, MHealthWorkload};
