//! Extension experiment: cost of the Verena-style integrity layer (§3.3).
//!
//! Not a paper table — the paper explicitly scopes integrity out and points
//! to Verena; this harness quantifies what the extension costs on top of
//! TimeCrypt so the trade-off is concrete:
//!
//! 1. proof generation/verification scaling with tree size (fixed range),
//! 2. proof scaling with range size (fixed tree),
//! 3. attestation sign/verify (ECDSA P-256),
//! 4. end-to-end: verified statistical query vs the base query.
//!
//! ```sh
//! cargo run -p timecrypt-bench --release --bin ext_integrity
//! ```

use std::sync::Arc;
use std::time::Instant;
use timecrypt_baselines::SigningKey;
use timecrypt_bench::measure::{format_duration, time_avg};
use timecrypt_chunk::{DataPoint, StreamConfig};
use timecrypt_client::{Consumer, DataOwner, InProcess, Producer};
use timecrypt_crypto::SecureRandom;
use timecrypt_integrity::{chunk_commitment, SumLeaf, SumTree};
use timecrypt_server::{ServerConfig, TimeCryptServer};
use timecrypt_store::MemKv;

const WIDTH: usize = 19; // standard digest schema width

fn tree_of(n: usize) -> SumTree {
    let mut t = SumTree::new();
    for i in 0..n as u64 {
        t.push(SumLeaf {
            commitment: chunk_commitment(&i.to_le_bytes()),
            sum: (0..WIDTH as u64).map(|j| i * 31 + j).collect(),
        })
        .unwrap();
    }
    t
}

fn main() {
    // ── 1. Scaling with tree size ────────────────────────────────────────
    println!("=== 1. Proof cost vs tree size (range = 1k chunks, width {WIDTH}) ===\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "chunks", "prove", "verify", "proof bytes"
    );
    for log_n in [10usize, 12, 14, 16] {
        let n = 1 << log_n;
        let tree = tree_of(n);
        let root = tree.root();
        let (lo, hi) = (n / 4, n / 4 + 1_000.min(n / 2));
        let prove = time_avg(50, || {
            std::hint::black_box(tree.range_proof(lo, hi, n).unwrap());
        });
        let proof = tree.range_proof(lo, hi, n).unwrap();
        let verify = time_avg(200, || {
            std::hint::black_box(proof.verify(&root).unwrap());
        });
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            n,
            format_duration(prove),
            format_duration(verify),
            proof.encode().len()
        );
    }
    println!("\nExpected: prove is O(n) on an uncached tree (the server can cache");
    println!("interior nodes); verify and proof size are O(log n) — the consumer-");
    println!("side cost is what matters and it stays microseconds/KBs.\n");

    // ── 2. Scaling with range size ───────────────────────────────────────
    println!("=== 2. Proof cost vs range size (tree = 64k chunks) ===\n");
    let n = 1 << 16;
    let tree = tree_of(n);
    let root = tree.root();
    println!("{:>10} {:>12} {:>12}", "range", "verify", "proof bytes");
    for log_r in [0usize, 4, 8, 12, 15] {
        let r = 1 << log_r;
        let proof = tree.range_proof(0, r, n).unwrap();
        let verify = time_avg(200, || {
            std::hint::black_box(proof.verify(&root).unwrap());
        });
        println!(
            "{:>10} {:>12} {:>12}",
            r,
            format_duration(verify),
            proof.encode().len()
        );
    }
    println!("\nExpected: near-flat — the canonical cover of any aligned range is");
    println!("O(log n) nodes regardless of its length.\n");

    // ── 3. Attestation costs ─────────────────────────────────────────────
    println!("=== 3. Root attestation (ECDSA P-256 over SHA-256) ===\n");
    let mut rng = SecureRandom::from_seed_insecure(7);
    let key = SigningKey::generate(&mut rng);
    let vk = key.verifying_key();
    let sign = time_avg(20, || {
        let mut r = SecureRandom::from_seed_insecure(9);
        std::hint::black_box(key.sign(b"timecrypt.root.v1", &mut r));
    });
    let sig = key.sign(b"timecrypt.root.v1", &mut rng);
    let verify = time_avg(20, || {
        std::hint::black_box(vk.verify(b"timecrypt.root.v1", &sig));
    });
    println!(
        "  sign {}   verify {}   (once per attestation epoch, not per query)\n",
        format_duration(sign),
        format_duration(verify)
    );

    // ── 4. End-to-end overhead ───────────────────────────────────────────
    println!("=== 4. E2E: verified_stat_query vs stat_query (4k chunks) ===\n");
    let server =
        Arc::new(TimeCryptServer::open(Arc::new(MemKv::new()), ServerConfig::default()).unwrap());
    let mut t = InProcess::new(server);
    let cfg = StreamConfig::new(1, "hr", 0, 10_000);
    let mut owner = DataOwner::with_height(
        cfg.clone(),
        [7u8; 16],
        24,
        SecureRandom::from_seed_insecure(1),
    );
    owner.create_stream(&mut t).unwrap();
    let mut p = Producer::new(
        cfg.clone(),
        owner.provision_producer(),
        SecureRandom::from_seed_insecure(2),
    )
    .with_attester(key);
    let chunks = 4_096i64;
    let start = Instant::now();
    for c in 0..chunks {
        p.push(&mut t, DataPoint::new(c * 10_000, c)).unwrap();
    }
    p.flush(&mut t).unwrap();
    p.attest(&mut t).unwrap();
    println!(
        "  ingest {} chunks with ledger mirroring: {:?}",
        chunks,
        start.elapsed()
    );

    let mut c = Consumer::new("c", &mut rng);
    owner
        .grant_access(&mut t, "c", c.public_key(), 0, chunks * 10_000)
        .unwrap();
    c.sync_grants(&mut t, cfg.id).unwrap();
    let (ts_s, ts_e) = (1_000 * 10_000, 3_000 * 10_000);
    let base = time_avg(200, || {
        std::hint::black_box(c.stat_query(&mut t, cfg.id, ts_s, ts_e).unwrap());
    });
    let verified = time_avg(200, || {
        std::hint::black_box(
            c.verified_stat_query(&mut t, cfg.id, &vk, ts_s, ts_e)
                .unwrap(),
        );
    });
    println!(
        "  stat_query {}   verified_stat_query {}   ({:.1}x)",
        format_duration(base),
        format_duration(verified),
        verified.as_nanos() as f64 / base.as_nanos().max(1) as f64
    );
    println!("\nExpected: the verified path adds one ECDSA verify + one O(log n)");
    println!("proof check per query — integrity costs milliseconds, not the");
    println!("orders-of-magnitude of the Paillier/EC-ElGamal strawman.");
}
