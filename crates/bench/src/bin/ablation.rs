//! Ablation studies for TimeCrypt's design choices (DESIGN.md §2).
//!
//! 1. **Index arity** — the paper instantiates 64-ary trees; this sweep
//!    shows the ingest/query trade-off that motivates it (small k = deep
//!    trees, many node touches per query; huge k = wide nodes, expensive
//!    edge scans and node (de)serialization).
//! 2. **Key canceling** — HEAC decryption with the `k_i − k_{i+1}` encoding
//!    (two key derivations per range) vs the naive Castelluccia scheme
//!    (one key derivation *per aggregated chunk*), the paper's §4.2.2
//!    motivation.
//! 3. **Digest width** — cost of supporting richer statistics (sum-only vs
//!    the default sum/count/sumsq/histogram schema).
//! 4. **Strided aggregation** (§7 "Performance") — HEAC is optimized for
//!    contiguous ranges; aggregating every second chunk forfeits key
//!    canceling and decryption grows linearly with the number of segments.
//! 5. **Compression codec** — per-codec ratio and speed on the mhealth-like
//!    signal, motivating the best-of Auto mode.
//!
//! ```sh
//! cargo run -p timecrypt-bench --release --bin ablation
//! ```

use std::sync::Arc;
use std::time::Instant;
use timecrypt_bench::measure::{format_duration, time_avg};
use timecrypt_core::heac::{decrypt_range_sum, ElementKeys, HeacEncryptor};
use timecrypt_core::TreeKd;
use timecrypt_crypto::{fold_u64, PrgKind};
use timecrypt_index::{AggTree, TreeConfig};
use timecrypt_store::MemKv;

fn main() {
    let n: u64 = 100_000;

    // ── 1. Arity sweep ───────────────────────────────────────────────────
    println!("=== Ablation 1: index arity (n = {n} chunks, sum digest) ===\n");
    println!(
        "{:>6} {:>12} {:>16} {:>16}",
        "arity", "avg ingest", "query worst-case", "query aligned"
    );
    for arity in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let tree: AggTree<Vec<u64>> = AggTree::open(
            Arc::new(MemKv::new()),
            1,
            TreeConfig {
                arity,
                cache_bytes: 512 << 20,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        let start = Instant::now();
        for i in 0..n {
            tree.append(vec![i]).unwrap();
        }
        let ingest = start.elapsed() / n as u32;
        let worst = time_avg(500, || {
            std::hint::black_box(tree.query(1, n - 1).unwrap());
        });
        let aligned = time_avg(500, || {
            std::hint::black_box(tree.query(0, 65_536).unwrap());
        });
        println!(
            "{:>6} {:>12} {:>16} {:>16}",
            arity,
            format_duration(ingest),
            format_duration(worst),
            format_duration(aligned)
        );
    }
    println!("\nExpected: query cost falls steeply from k=2 and flattens around");
    println!("k=32..128 while ingest slowly rises with node width — the paper's");
    println!("64-ary choice sits at that knee.\n");

    // ── 2. Key canceling vs naive Castelluccia ───────────────────────────
    println!("=== Ablation 2: key canceling (§4.2.2) ===\n");
    let kd = TreeKd::new([7u8; 16], 30, PrgKind::Aes).unwrap();
    let enc = HeacEncryptor::new(&kd);
    for range in [100u64, 1_000, 10_000] {
        let mut agg = vec![0u64];
        for i in 0..range {
            let ct = enc.encrypt_digest(i, &[i]).unwrap();
            agg[0] = agg[0].wrapping_add(ct[0]);
        }
        // TimeCrypt: two boundary derivations, independent of range length.
        let tc = time_avg(2_000, || {
            std::hint::black_box(decrypt_range_sum(&kd, 0, range, &agg).unwrap());
        });
        // Naive Castelluccia: derive and add every chunk key in the range.
        let naive = time_avg(20, || {
            let mut key_sum = 0u64;
            for i in 0..range {
                let leaf = kd.leaf(i).unwrap();
                key_sum = key_sum.wrapping_add(fold_u64(&leaf));
            }
            std::hint::black_box(agg[0].wrapping_sub(key_sum));
        });
        println!(
            "  range {:>6} chunks: key-canceling {:>10}   naive {:>12}   ({:>6.0}x)",
            range,
            format_duration(tc),
            format_duration(naive),
            naive.as_nanos() as f64 / tc.as_nanos().max(1) as f64
        );
    }
    println!("\nExpected: key-canceling is constant; naive grows linearly — the");
    println!("gap is why HEAC decryption is independent of aggregation size.\n");

    // ── 3. Digest width ──────────────────────────────────────────────────
    println!("=== Ablation 3: digest width (statistics richness) ===\n");
    for (label, width) in [
        ("sum only", 1usize),
        ("sum+count", 2),
        ("standard (19)", 19),
        ("wide (64)", 64),
    ] {
        let digest: Vec<u64> = (0..width as u64).collect();
        let t_enc = time_avg(10_000, || {
            std::hint::black_box(enc.encrypt_digest(5, &digest).unwrap());
        });
        let keys = ElementKeys::new(&kd.leaf(5).unwrap());
        let t_keys = time_avg(10_000, || {
            std::hint::black_box(keys.keys(width));
        });
        println!(
            "  {:<14} encrypt {:>10}   element keys {:>10}",
            label,
            format_duration(t_enc),
            format_duration(t_keys)
        );
    }
    println!("\nExpected: cost grows linearly with width but stays µs-class even");
    println!("for wide digests — one AES block per element after the two leaf");
    println!("derivations are paid.\n");

    // ── 4. Strided aggregation (§7 limitation) ───────────────────────────
    println!("=== Ablation 4: contiguous vs strided aggregation (§7) ===\n");
    println!(
        "{:>8} {:>18} {:>18} {:>8}",
        "chunks", "contiguous dec", "every-2nd dec", "ratio"
    );
    for range in [64u64, 256, 1_024, 4_096] {
        // Contiguous [0, range): one telescoped sum, two boundary keys.
        let mut contiguous = vec![0u64];
        for i in 0..range {
            let ct = enc.encrypt_digest(i, &[i]).unwrap();
            contiguous[0] = contiguous[0].wrapping_add(ct[0]);
        }
        let t_cont = time_avg(2_000, || {
            std::hint::black_box(decrypt_range_sum(&kd, 0, range, &contiguous).unwrap());
        });

        // Strided: sum of every second chunk = range/2 single-chunk segments,
        // each needing its own boundary-key pair (no inner keys cancel).
        let mut strided = vec![0u64];
        for i in (0..range).step_by(2) {
            let ct = enc.encrypt_digest(i, &[i]).unwrap();
            strided[0] = strided[0].wrapping_add(ct[0]);
        }
        let t_strided = time_avg(50, || {
            let mut m = strided.clone();
            for i in (0..range).step_by(2) {
                let k_i = ElementKeys::new(&kd.leaf(i).unwrap());
                let k_next = ElementKeys::new(&kd.leaf(i + 1).unwrap());
                m[0] = m[0].wrapping_sub(k_i.key(0)).wrapping_add(k_next.key(0));
            }
            std::hint::black_box(m);
        });
        println!(
            "{:>8} {:>18} {:>18} {:>7.0}x",
            range,
            format_duration(t_cont),
            format_duration(t_strided),
            t_strided.as_nanos() as f64 / t_cont.as_nanos().max(1) as f64
        );
    }
    println!("\nExpected: contiguous decryption is flat; the strided pattern grows");
    println!("linearly with the number of disjoint segments — the limitation the");
    println!("paper states in §7 (\"suffers from alternative patterns, such as");
    println!("aggregating every second data chunk\").\n");

    // ── 5. Compression codecs ────────────────────────────────────────────
    println!("=== Ablation 5: compression codecs (500-pt mhealth-like chunk) ===\n");
    {
        use timecrypt_chunk::compress::{compress, compress_best, Codec};
        use timecrypt_chunk::DataPoint;
        let points: Vec<DataPoint> = (0..500)
            .map(|i| DataPoint::new(1_700_000_000_000 + i * 20, 70 + (i % 7) - 3))
            .collect();
        let raw = compress(Codec::None, &points).len();
        println!(
            "{:>10} {:>10} {:>8} {:>12}",
            "codec", "bytes", "ratio", "encode"
        );
        for codec in Codec::CONCRETE {
            let size = compress(codec, &points).len();
            let t = time_avg(2_000, || {
                std::hint::black_box(compress(codec, &points));
            });
            println!(
                "{:>10} {:>10} {:>7.1}x {:>12}",
                format!("{codec:?}"),
                size,
                raw as f64 / size as f64,
                format_duration(t)
            );
        }
        let (winner, best) = compress_best(&points);
        println!(
            "\nAuto picks {winner:?} at {} bytes for this signal.",
            best.len()
        );
    }
}
