//! §6.2 access-control comparison: TimeCrypt's tree derivation + dual key
//! regression vs the ABE (Sieve-style) cost model.
//!
//! TimeCrypt numbers are measured; ABE numbers replay the paper's published
//! constants (53 ms/chunk grant, 13 ms/chunk decrypt at 80-bit security
//! with one attribute) — see DESIGN.md §5.
//!
//! ```sh
//! cargo run -p timecrypt-bench --release --bin access_control
//! ```

use timecrypt_baselines::abe::AbeCostModel;
use timecrypt_bench::measure::{format_duration, time_avg};
use timecrypt_core::dualkr::chain_walk;
use timecrypt_core::heac::{decrypt_range_sum, HeacEncryptor};
use timecrypt_core::TreeKd;
use timecrypt_crypto::PrgKind;

fn main() {
    println!("=== §6.2: crypto-enforced access control, TimeCrypt vs ABE ===\n");

    // ── TimeCrypt: key derivation in a 2^30-key tree (log n PRG calls) ──
    let kd = TreeKd::new([3u8; 16], 30, PrgKind::Aes).unwrap();
    let derive = time_avg(20_000, || {
        std::hint::black_box(kd.leaf((1 << 30) - 1).unwrap());
    });
    println!(
        "TimeCrypt tree derivation (2^30 keys, cold): {}",
        format_duration(derive)
    );
    println!("  paper: 2.5 µs");

    // ── Dual key regression: O(√n) chain walk for n = 2^30 ─────────────
    let steps = 1u64 << 15; // √(2^30) = 32768
    let seed = [9u8; 32];
    let kr_walk = time_avg(50, || {
        std::hint::black_box(chain_walk(&seed, steps));
    });
    println!(
        "Dual key regression derivation (√(2^30) = {steps} hash steps): {}",
        format_duration(kr_walk)
    );
    println!("  paper: 2.7 ms");

    // ── TimeCrypt chunk decryption: one add + one sub ───────────────────
    let enc = HeacEncryptor::new(&kd);
    let ct = enc.encrypt_digest(1000, &[42]).unwrap();
    // Boundary keys derived once (amortized over a shared segment), as in
    // the paper's "one addition and one subtraction" accounting.
    let keys_a = timecrypt_core::heac::ElementKeys::new(&kd.leaf(1000).unwrap());
    let keys_b = timecrypt_core::heac::ElementKeys::new(&kd.leaf(1001).unwrap());
    let (ka, kb) = (keys_a.key(0), keys_b.key(0));
    let mut out = 0u64;
    let dec_hot = time_avg(10_000_000, || {
        out = ct[0].wrapping_sub(ka).wrapping_add(kb);
    });
    std::hint::black_box(out);
    println!(
        "TimeCrypt per-chunk decryption (keys in hand): {}",
        format_duration(dec_hot)
    );
    println!("  paper: ~2 ns");
    let dec_cold = time_avg(20_000, || {
        std::hint::black_box(decrypt_range_sum(&kd, 1000, 1001, &ct).unwrap());
    });
    println!(
        "TimeCrypt per-range decryption (incl. key derivation): {}",
        format_duration(dec_cold)
    );

    // ── ABE model ────────────────────────────────────────────────────────
    let abe = AbeCostModel::default();
    println!("\nABE (published constants, 80-bit, 1 attribute):");
    println!(
        "  grant per chunk:   {}",
        format_duration(abe.grant_per_chunk)
    );
    println!(
        "  decrypt per chunk: {}",
        format_duration(abe.decrypt_per_chunk)
    );

    // ── Scenario: share one day of 10 s chunks (8640 chunks) ────────────
    let chunks = 8640u64;
    println!("\nScenario: grant + read one day of Δ=10 s data ({chunks} chunks):");
    let tc_grant = derive * 2; // a range grant = O(log n) tokens ≈ 2 derivations
    println!(
        "  TimeCrypt grant (token cover): {}   ABE grant: {}",
        format_duration(tc_grant),
        format_duration(abe.grant_cost(chunks, 1)),
    );
    println!(
        "  TimeCrypt decrypt (range):     {}   ABE decrypt: {}",
        format_duration(dec_cold),
        format_duration(abe.decrypt_cost(chunks)),
    );

    println!("\nPaper shape check: TimeCrypt grants/decrypts in µs–ms where ABE");
    println!("needs minutes per day of chunks — 4+ orders of magnitude apart.");
}
