//! Fig. 7: end-to-end ingest & statistical-query throughput and latency for
//! Plaintext / TimeCrypt / EC-ElGamal / Paillier, plus the tiny-cache
//! variant.
//!
//! The paper drives 1200 streams from 100 client threads at a 4:1
//! read:write ratio against an AWS m5.2xlarge. This harness runs the same
//! pipeline scaled to one machine and a bounded duration: N worker threads,
//! each owning a set of streams, performing four statistical queries after
//! each chunk ingest (the paper's mix). Strawman schemes run with far fewer
//! operations — they are orders of magnitude slower, which is the result.
//!
//! ```sh
//! cargo run -p timecrypt-bench --release --bin fig7                       # mhealth
//! cargo run -p timecrypt-bench --release --bin fig7 -- --workload devops  # §6.3
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use timecrypt_baselines::{EcElGamal, ElGamalDigest, Paillier, PaillierDigest};
use timecrypt_bench::workload::{DevOpsWorkload, MHealthWorkload};
use timecrypt_core::heac::{decrypt_range_sum, HeacEncryptor};
use timecrypt_core::TreeKd;
use timecrypt_crypto::{PrgKind, SecureRandom};
use timecrypt_index::{AggTree, HomDigest, TreeConfig};
use timecrypt_store::MemKv;

struct Totals {
    records: AtomicU64,
    queries: AtomicU64,
    ingest_ns: AtomicU64,
    query_ns: AtomicU64,
}

/// Drives `threads` workers for `chunks_per_stream` chunks each over
/// `streams_per_thread` streams; 4 statistical queries per chunk ingest.
#[allow(clippy::too_many_arguments)]
fn drive<D: HomDigest>(
    label: &str,
    threads: usize,
    streams_per_thread: usize,
    chunks_per_stream: u64,
    records_per_chunk: u64,
    cache_bytes: usize,
    digest_for: impl Fn(u64, u64) -> Vec<u64> + Send + Sync + 'static,
    make: impl Fn(&[u64], u64) -> D + Send + Sync + 'static,
    post: impl Fn(D, u64, u64) + Send + Sync + 'static,
) {
    let totals = Arc::new(Totals {
        records: AtomicU64::new(0),
        queries: AtomicU64::new(0),
        ingest_ns: AtomicU64::new(0),
        query_ns: AtomicU64::new(0),
    });
    let digest_for = Arc::new(digest_for);
    let make = Arc::new(make);
    let post = Arc::new(post);
    // Pre-generate the plaintext digests so workload synthesis stays out of
    // the timed path (the paper's load generator likewise prepares batches).
    let prepared: Arc<Vec<Vec<Vec<u64>>>> = Arc::new(
        (0..threads * streams_per_thread)
            .map(|sid| {
                (0..chunks_per_stream)
                    .map(|c| digest_for(sid as u64, c))
                    .collect()
            })
            .collect(),
    );
    let wall = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let totals = totals.clone();
            let prepared = prepared.clone();
            let make = make.clone();
            let post = post.clone();
            std::thread::spawn(move || {
                // Each stream gets its own tree over a shared-nothing store
                // (the paper's streams are independent Cassandra rows).
                let mut trees: Vec<AggTree<D>> = (0..streams_per_thread)
                    .map(|s| {
                        AggTree::open(
                            Arc::new(MemKv::new()),
                            (t * streams_per_thread + s) as u128,
                            TreeConfig {
                                arity: 64,
                                cache_bytes,
                                ..TreeConfig::default()
                            },
                        )
                        .unwrap()
                    })
                    .collect();
                for chunk in 0..chunks_per_stream {
                    for (s, tree) in trees.iter_mut().enumerate() {
                        let sid = t * streams_per_thread + s;
                        let plain = &prepared[sid][chunk as usize];
                        let t0 = Instant::now();
                        tree.append(make(plain, chunk)).unwrap();
                        totals
                            .ingest_ns
                            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        totals
                            .records
                            .fetch_add(records_per_chunk, Ordering::Relaxed);
                        // 4:1 read:write — four queries per ingest.
                        let len = tree.len();
                        for q in 0..4u64 {
                            let lo = (q * len / 5).min(len - 1);
                            let t0 = Instant::now();
                            let d = tree.query(lo, len).unwrap();
                            post(d, lo, len);
                            totals
                                .query_ns
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            totals.queries.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = wall.elapsed();
    let records = totals.records.load(Ordering::Relaxed);
    let queries = totals.queries.load(Ordering::Relaxed);
    let chunks = threads as u64 * streams_per_thread as u64 * chunks_per_stream;
    println!(
        "{:<22} {:>12.0} {:>12.0} {:>12.2} {:>12.2}",
        label,
        records as f64 / elapsed.as_secs_f64(),
        queries as f64 / elapsed.as_secs_f64(),
        totals.ingest_ns.load(Ordering::Relaxed) as f64 / chunks as f64 / 1_000_000.0,
        totals.query_ns.load(Ordering::Relaxed) as f64 / queries.max(1) as f64 / 1_000_000.0,
    );
}

fn main() {
    let devops = std::env::args().any(|a| a == "devops")
        || std::env::args().any(|a| a == "--workload=devops");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);

    // Workload shape: mhealth = 500 records/chunk; devops = 6 records/chunk.
    let (records_per_chunk, _digest_width, chunks, streams) = if devops {
        (6u64, 4usize, 400u64, 4usize)
    } else {
        (500u64, 2usize, 400u64, 4usize)
    };
    // Pre-generate one plaintext digest series per stream id via the
    // workload generators (values differ per chunk; shape per workload).
    let digest_for = move |sid: u64, chunk: u64| -> Vec<u64> {
        // Deterministic digest derived from the workload generators.
        if devops {
            let mut w = DevOpsWorkload::paper(sid);
            let pts = w.chunk_points(chunk);
            let sum: u64 = pts.iter().map(|p| p.value as u64).sum();
            vec![sum, pts.len() as u64, 0, 0]
        } else {
            let mut w = MHealthWorkload::paper(sid);
            let pts = w.chunk_points(chunk);
            let sum: u64 = pts.iter().map(|p| p.value as u64).sum();
            vec![sum, pts.len() as u64]
        }
    };

    println!(
        "=== Fig. 7 ({}): E2E throughput & latency, {} threads x {} streams x {} chunks ===\n",
        if devops { "DevOps" } else { "mhealth" },
        threads,
        streams,
        chunks
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "config", "ingest rec/s", "query ops/s", "ins lat(ms)", "qry lat(ms)"
    );

    // ── Plaintext ────────────────────────────────────────────────────────
    drive(
        "Plaintext",
        threads,
        streams,
        chunks,
        records_per_chunk,
        64 << 20,
        digest_for,
        |plain, _| plain.to_vec(),
        |d, _, _| {
            std::hint::black_box(d[0]);
        },
    );

    // ── TimeCrypt ────────────────────────────────────────────────────────
    let kd = Arc::new(TreeKd::new([7u8; 16], 30, PrgKind::Aes).unwrap());
    let kd2 = kd.clone();
    drive(
        "TimeCrypt",
        threads,
        streams,
        chunks,
        records_per_chunk,
        64 << 20,
        digest_for,
        move |plain, chunk| {
            HeacEncryptor::new(&kd)
                .encrypt_digest(chunk, plain)
                .unwrap()
        },
        move |d, lo, hi| {
            std::hint::black_box(decrypt_range_sum(kd2.as_ref(), lo, hi, &d).unwrap());
        },
    );

    // ── TimeCrypt, 1 MB index cache (Fig. 7c "S" variant) ───────────────
    let kd = Arc::new(TreeKd::new([7u8; 16], 30, PrgKind::Aes).unwrap());
    let kd2 = kd.clone();
    drive(
        "TimeCrypt (1MB cache)",
        threads,
        streams,
        chunks,
        records_per_chunk,
        1 << 20,
        digest_for,
        move |plain, chunk| {
            HeacEncryptor::new(&kd)
                .encrypt_digest(chunk, plain)
                .unwrap()
        },
        move |d, lo, hi| {
            std::hint::black_box(decrypt_range_sum(kd2.as_ref(), lo, hi, &d).unwrap());
        },
    );

    // ── Strawman (heavily scaled down: the slowdown IS the result) ──────
    let mut rng = SecureRandom::from_seed_insecure(1);
    println!("  generating Paillier-3072 keypair...");
    let paillier = Arc::new(Paillier::generate(3072, &mut rng));
    let pp = paillier.clone();
    drive(
        "Paillier (scaled)",
        1,
        1,
        40,
        records_per_chunk,
        64 << 20,
        digest_for,
        move |_plain, chunk| {
            let mut rng = SecureRandom::from_seed_insecure(chunk);
            PaillierDigest(vec![paillier.public.encrypt(chunk, &mut rng)])
        },
        move |d, _, _| {
            std::hint::black_box(pp.decrypt(&d.0[0]));
        },
    );

    let elgamal = Arc::new(EcElGamal::generate(1 << 20, &mut rng));
    let eg = elgamal.clone();
    drive(
        "EC-ElGamal (scaled)",
        1,
        1,
        40,
        records_per_chunk,
        64 << 20,
        digest_for,
        move |_plain, chunk| {
            let mut rng = SecureRandom::from_seed_insecure(chunk);
            ElGamalDigest(vec![elgamal.encrypt(chunk % 100, &mut rng)])
        },
        move |d, _, _| {
            std::hint::black_box(eg.decrypt(&d.0[0]));
        },
    );

    println!("\nPaper shape check: TimeCrypt within ~2% of plaintext on both");
    println!("metrics (paper: 1.8% mhealth, 0.75% DevOps); the small cache hurts");
    println!("both equally; strawman throughput is orders of magnitude lower.");
}
