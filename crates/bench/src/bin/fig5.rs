//! Fig. 5: aggregate-query latency over varying interval sizes [0, 2^x].
//!
//! For TimeCrypt/plaintext the curve is flat-ish and *drops* at power-of-k
//! boundaries (fewer tree levels touched; aggregating the whole index is
//! just reading the root). The strawman schemes show a sawtooth from
//! expensive on-the-fly homomorphic additions inside partially covered
//! nodes. The paper caps the strawman at 2^20 chunks due to construction
//! cost; we cap at 2^8 by default (`--full` raises TimeCrypt/plaintext to
//! 2^26 and strawman to 2^12).
//!
//! ```sh
//! cargo run -p timecrypt-bench --release --bin fig5 [-- --full]
//! ```

use std::sync::Arc;
use timecrypt_baselines::{EcElGamal, ElGamalDigest, Paillier, PaillierDigest};
use timecrypt_bench::measure::time_avg;
use timecrypt_core::heac::{decrypt_range_sum, HeacEncryptor};
use timecrypt_core::TreeKd;
use timecrypt_crypto::{PrgKind, SecureRandom};
use timecrypt_index::{AggTree, HomDigest, TreeConfig};
use timecrypt_store::MemKv;

fn build<D: HomDigest>(n: u64, mut make: impl FnMut(u64) -> D) -> AggTree<D> {
    let tree: AggTree<D> = AggTree::open(
        Arc::new(MemKv::new()),
        1,
        TreeConfig {
            arity: 64,
            cache_bytes: 1 << 30,
            ..TreeConfig::default()
        },
    )
    .unwrap();
    for i in 0..n {
        tree.append(make(i)).unwrap();
    }
    tree
}

fn sweep<D: HomDigest>(
    label: &str,
    tree: &AggTree<D>,
    max_x: u32,
    iters: u64,
    mut post: impl FnMut(D, u64),
) {
    print!("{label:>10}:");
    for x in 0..=max_x {
        let end = (1u64 << x).min(tree.len());
        let t = time_avg(iters, || {
            let d = tree.query(0, end).unwrap();
            std::hint::black_box(&d);
        });
        // One decryption outside the loop for the post-processing cost.
        let d = tree.query(0, end).unwrap();
        post(d, end);
        print!(" {:>9.1}", t.as_nanos() as f64 / 1000.0);
    }
    println!();
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let tc_x: u32 = if full { 26 } else { 16 };
    let straw_x: u32 = if full { 12 } else { 8 };
    let mut rng = SecureRandom::from_seed_insecure(1);

    println!("=== Fig. 5: query latency (µs) over interval [0, 2^x], 64-ary index ===");
    print!("{:>10} ", "x:");
    for x in 0..=tc_x {
        print!(" {x:>9}");
    }
    println!();

    let plain = build(1 << tc_x, |i| vec![i % 1000]);
    sweep("Plaintext", &plain, tc_x, 200, |d, _| {
        std::hint::black_box(d[0]);
    });

    let kd = TreeKd::new([7u8; 16], 30, PrgKind::Aes).unwrap();
    let enc = HeacEncryptor::new(&kd);
    let tc = build(1 << tc_x, |i| enc.encrypt_digest(i, &[i % 1000]).unwrap());
    sweep("TimeCrypt", &tc, tc_x, 200, |d, end| {
        std::hint::black_box(decrypt_range_sum(&kd, 0, end, &d).unwrap());
    });

    println!("  (strawman capped at 2^{straw_x} due to construction cost, as in the paper)");
    println!("  generating Paillier-3072 keypair...");
    let paillier = Paillier::generate(3072, &mut rng);
    let ptree = build(1 << straw_x, |i| {
        PaillierDigest(vec![paillier
            .public
            .encrypt(i % 1000, &mut SecureRandom::from_seed_insecure(i))])
    });
    sweep("Paillier", &ptree, straw_x, 3, |d, _| {
        std::hint::black_box(paillier.decrypt(&d.0[0]));
    });

    let elgamal = EcElGamal::generate(1 << 22, &mut rng);
    let etree = build(1 << straw_x, |i| {
        ElGamalDigest(vec![
            elgamal.encrypt(i % 4, &mut SecureRandom::from_seed_insecure(i))
        ])
    });
    sweep("EC-ElGamal", &etree, straw_x, 3, |d, _| {
        std::hint::black_box(elgamal.decrypt(&d.0[0]));
    });

    println!("\nPaper shape check: plaintext and TimeCrypt stay within ~2x of each");
    println!("other across all interval sizes; strawman latencies are orders of");
    println!("magnitude higher and sawtooth with on-the-fly additions.");
}
