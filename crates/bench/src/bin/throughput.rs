//! Service-tier throughput as a function of shard count.
//!
//! Ingests `STREAMS × CHUNKS` pre-sealed chunks through the batched ingest
//! pipeline with `PRODUCERS` submitter threads, then fires multi-stream
//! scatter-gather statistical queries, for each shard count in the sweep.
//! Emits one JSON object per configuration on stdout so future PRs have a
//! machine-readable perf trajectory to compare against.
//!
//! The store behind the shards is a [`LatencyKv`] modelling a remote
//! storage tier (the paper's DevOps deployment runs Cassandra on a separate
//! machine, §6): with per-operation storage latency, shard workers overlap
//! their storage waits, so throughput scales with shard count even on a
//! single core. Set `TC_STORE_LAT_US=0` for the co-located (CPU-bound)
//! variant.
//!
//! Env knobs: `TC_SHARDS` (comma list, default `1,2,4,8`), `TC_STREAMS`
//! (default 32), `TC_CHUNKS` (chunks/stream, default 64), `TC_PRODUCERS`
//! (default 8), `TC_BATCH` (chunks/batch, default 16), `TC_QUERIES`
//! (default 200), `TC_STORE_LAT_US` (default 50).

use std::sync::Arc;
use std::time::{Duration, Instant};
use timecrypt_chunk::serialize::EncryptedChunk;
use timecrypt_chunk::{DataPoint, DigestSchema, PlainChunk, StreamConfig};
use timecrypt_core::StreamKeyMaterial;
use timecrypt_crypto::{PrgKind, SecureRandom};
use timecrypt_service::{ServiceConfig, ShardedService};
use timecrypt_store::{KvStore, LatencyKv, MemKv};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Workload {
    /// Per-stream pre-sealed chunks (sealing cost excluded from ingest
    /// numbers — this measures the serving tier, not the client CPU).
    per_stream: Vec<Vec<EncryptedChunk>>,
}

fn build_workload(streams: usize, chunks: u64) -> Workload {
    let per_stream = (0..streams as u128)
        .map(|id| {
            let cfg = StreamConfig {
                schema: DigestSchema::sum_count(),
                ..StreamConfig::new(id, "bench", 0, 10_000)
            };
            let keys =
                StreamKeyMaterial::with_params(id, [(id as u8) ^ 0x5a; 16], 22, PrgKind::Aes)
                    .unwrap();
            let mut rng = SecureRandom::from_seed_insecure(id as u64);
            (0..chunks)
                .map(|i| {
                    PlainChunk {
                        stream: id,
                        index: i,
                        points: vec![DataPoint::new(i as i64 * 10_000, i as i64)],
                    }
                    .seal(&cfg, &keys, &mut rng)
                    .unwrap()
                })
                .collect()
        })
        .collect();
    Workload { per_stream }
}

struct Sample {
    shards: usize,
    ingest_ops_s: f64,
    ingest_wall_ms: f64,
    query_ops_s: f64,
    query_wall_ms: f64,
}

fn run_one(
    workload: &Workload,
    shards: usize,
    producers: usize,
    batch: usize,
    queries: usize,
    store_latency: Duration,
) -> Sample {
    let streams = workload.per_stream.len();
    let chunks = workload
        .per_stream
        .first()
        .map(|v| v.len() as u64)
        .unwrap_or(0);
    let kv: Arc<dyn KvStore> = if store_latency.is_zero() {
        Arc::new(MemKv::new())
    } else {
        Arc::new(LatencyKv::new(MemKv::new(), store_latency))
    };
    let svc = Arc::new(
        ShardedService::open(
            kv,
            ServiceConfig {
                shards,
                ..ServiceConfig::default()
            },
        )
        .unwrap(),
    );
    for id in 0..streams as u128 {
        svc.create_stream(id, 0, 10_000, 2).unwrap();
    }

    // Ingest: `producers` threads, each owning a disjoint set of streams,
    // submitting per-stream batches of `batch` chunks.
    let t = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let svc = svc.clone();
            let slices: Vec<&Vec<EncryptedChunk>> = workload
                .per_stream
                .iter()
                .enumerate()
                .filter(|(i, _)| i % producers == p)
                .map(|(_, v)| v)
                .collect();
            scope.spawn(move || {
                for stream_chunks in slices {
                    for window in stream_chunks.chunks(batch) {
                        for r in svc.submit_batch(window.to_vec()) {
                            r.unwrap();
                        }
                    }
                }
            });
        }
    });
    let ingest_wall = t.elapsed();
    let total_chunks = streams as u64 * chunks;

    // Queries: multi-stream scatter-gather over 8-stream groups, full range.
    let all: Vec<u128> = (0..streams as u128).collect();
    let t = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let svc = svc.clone();
            let all = &all;
            scope.spawn(move || {
                for q in (p..queries).step_by(producers) {
                    let group: Vec<u128> = all
                        .iter()
                        .cycle()
                        .skip(q % streams)
                        .take(8.min(streams))
                        .copied()
                        .collect();
                    svc.get_stat_range(&group, 0, chunks as i64 * 10_000)
                        .unwrap();
                }
            });
        }
    });
    let query_wall = t.elapsed();

    Sample {
        shards,
        ingest_ops_s: total_chunks as f64 / ingest_wall.as_secs_f64(),
        ingest_wall_ms: ingest_wall.as_secs_f64() * 1e3,
        query_ops_s: queries as f64 / query_wall.as_secs_f64(),
        query_wall_ms: query_wall.as_secs_f64() * 1e3,
    }
}

fn main() {
    let shard_sweep: Vec<usize> = std::env::var("TC_SHARDS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let streams = env_usize("TC_STREAMS", 32);
    let chunks = env_usize("TC_CHUNKS", 64) as u64;
    let producers = env_usize("TC_PRODUCERS", 8);
    let batch = env_usize("TC_BATCH", 16);
    let queries = env_usize("TC_QUERIES", 200);
    let store_latency = Duration::from_micros(env_usize("TC_STORE_LAT_US", 50) as u64);

    eprintln!("sealing workload: {streams} streams x {chunks} chunks ...");
    let workload = build_workload(streams, chunks);

    for &shards in &shard_sweep {
        // Warm-up run keeps allocator/page-cache effects out of the sweep.
        let _ = run_one(
            &workload,
            shards,
            producers,
            batch,
            16.min(queries),
            store_latency,
        );
        let s = run_one(&workload, shards, producers, batch, queries, store_latency);
        println!(
            "{{\"bench\":\"service_throughput\",\"shards\":{},\"streams\":{},\"chunks_per_stream\":{},\"producers\":{},\"batch\":{},\"ingest_ops_s\":{:.0},\"ingest_wall_ms\":{:.1},\"queries\":{},\"query_ops_s\":{:.0},\"query_wall_ms\":{:.1}}}",
            s.shards,
            streams,
            chunks,
            producers,
            batch,
            s.ingest_ops_s,
            s.ingest_wall_ms,
            queries,
            s.query_ops_s,
            s.query_wall_ms,
        );
    }
}
