//! Service-tier throughput as a function of shard count.
//!
//! Ingests `STREAMS × CHUNKS` pre-sealed chunks through the batched ingest
//! pipeline with `PRODUCERS` submitter threads, then fires multi-stream
//! scatter-gather statistical queries, for each shard count in the sweep.
//! Emits one JSON object per configuration on stdout so future PRs have a
//! machine-readable perf trajectory to compare against.
//!
//! The store behind the shards is a [`LatencyKv`] modelling a remote
//! storage tier (the paper's DevOps deployment runs Cassandra on a separate
//! machine, §6): with per-operation storage latency, shard workers overlap
//! their storage waits, so throughput scales with shard count even on a
//! single core. Set `TC_STORE_LAT_US=0` for the co-located (CPU-bound)
//! variant.
//!
//! A second phase measures the **mixed read/write workload** on a *single
//! shard*: one ingest thread hammers a hot stream while `T` query threads
//! fire scatter-gather statistical queries at the same shard, for each `T`
//! in a sweep. Before the read-path lock split, every reader serialized
//! behind the hot stream's ingest lock and `query_ops_s` stayed flat (or
//! sank) with more query threads; with the split it scales.
//!
//! The **remote** phase reruns the ingest+query workload against a
//! real multi-node cluster on loopback TCP: one `ShardNode` process-alike
//! per shard (each over its own latency-modelled store) behind a
//! coordinator with a remote topology. Comparing `service_throughput` and
//! `remote_throughput` rows at the same shard count isolates the wire
//! cost (framing + pipelining + pooled connections) of scaling out.
//!
//! The **failover/rebuild** phase runs a replicated loopback shard
//! (primary + backup nodes, R=2) and kills the primary mid-ingest:
//! promotion latency is the wall time until a write is acknowledged
//! again, rebuild time is `attach_replica` → the replacement verified in
//! sync, and a final query sweep measures throughput once the shard is
//! back at R=2.
//!
//! The **deep-tree** phase measures single-query latency down a
//! many-level tree (one stream, small arity, tiny cache, latency-modelled
//! store) twice over the same data — parallel edge recursion off, then
//! on — so the reported `speedup` isolates the intra-query parallelism
//! and the run can assert the two modes answer byte-identically.
//!
//! Env knobs: `TC_SHARDS` (comma list, default `1,2,4,8`), `TC_STREAMS`
//! (default 32), `TC_CHUNKS` (chunks/stream, default 64), `TC_PRODUCERS`
//! (default 8), `TC_BATCH` (chunks/batch, default 16), `TC_QUERIES`
//! (default 200), `TC_STORE_LAT_US` (default 50). Mixed phase:
//! `TC_QUERY_THREADS` (comma list, default `1,2,4,8`), `TC_MIXED_QUERIES`
//! (default 400), `TC_READERS` (intra-shard reader pool, default 4),
//! `TC_MIXED` (`0` skips the phase). Remote phase: `TC_REMOTE` (`0`
//! skips), `TC_REMOTE_SHARDS` (comma list, default `1,4`).
//! Failover/rebuild phase: `TC_FAILOVER` (`0` skips). Faults phase:
//! `TC_FAULTS` (`0` skips), `TC_FAULT_SEED` (default 7) — single-shard
//! workload under seeded store faults (1% errors, 1% of puts stalled
//! 10 ms), retry-until-acked; reported, not gated. Deep-tree phase:
//! `TC_DEEP` (`0` skips), `TC_DEEP_CHUNKS` (default 8192),
//! `TC_DEEP_ARITY` (default 4), `TC_DEEP_QUERIES` (default 30).
//! Tracing-overhead phase: `TC_TRACING` (`0` skips) — reruns the
//! ingest and query workload with request tracing enabled and reports
//! both. Many-streams phase: `TC_MANY` (`0` skips), `TC_MANY_STREAMS`
//! (comma sweep of stored stream counts, default `10000,100000,1000000`),
//! `TC_MAX_RESIDENT` (resident LRU cap, default 1024), `TC_MANY_HOT`
//! (hot working set, default 32), `TC_MANY_QUERIES` (default 200000).
//! Throughput rows also carry per-op p50/p95/p99 latency
//! percentiles (`ingest_p50_ms`, `query_p99_ms`, ...) derived from the
//! service's log₂ histograms.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use timecrypt_chunk::serialize::EncryptedChunk;
use timecrypt_chunk::{DataPoint, DigestSchema, PlainChunk, StreamConfig};
use timecrypt_core::StreamKeyMaterial;
use timecrypt_crypto::{PrgKind, SecureRandom};
use timecrypt_service::{
    BackendSpec, NodeConfig, ServiceConfig, ShardNode, ShardSpec, ShardedService,
};
use timecrypt_store::{KvStore, LatencyKv, MemKv};
use timecrypt_wire::transport::Server;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Workload {
    /// Per-stream pre-sealed chunks (sealing cost excluded from ingest
    /// numbers — this measures the serving tier, not the client CPU).
    per_stream: Vec<Vec<EncryptedChunk>>,
}

fn build_workload(streams: usize, chunks: u64) -> Workload {
    let per_stream = (0..streams as u128)
        .map(|id| {
            let cfg = StreamConfig {
                schema: DigestSchema::sum_count(),
                ..StreamConfig::new(id, "bench", 0, 10_000)
            };
            let keys =
                StreamKeyMaterial::with_params(id, [(id as u8) ^ 0x5a; 16], 22, PrgKind::Aes)
                    .unwrap();
            let mut rng = SecureRandom::from_seed_insecure(id as u64);
            // Amortized sealer: sequential chunks share boundary-leaf
            // derivations (byte-identical to one-shot `seal`).
            let mut sealer = timecrypt_chunk::ChunkSealer::new(&cfg, &keys);
            (0..chunks)
                .map(|i| {
                    sealer
                        .seal(
                            &PlainChunk {
                                stream: id,
                                index: i,
                                points: vec![DataPoint::new(i as i64 * 10_000, i as i64)],
                            },
                            &mut rng,
                        )
                        .unwrap()
                })
                .collect()
        })
        .collect();
    Workload { per_stream }
}

struct Sample {
    shards: usize,
    ingest_ops_s: f64,
    ingest_wall_ms: f64,
    query_ops_s: f64,
    query_wall_ms: f64,
    /// Per-operation latency percentiles (ms) from the service tier's
    /// log₂ histograms, aggregated across shards.
    ingest_p: [f64; 3],
    query_p: [f64; 3],
}

/// p50/p95/p99 in **milliseconds** of the summed per-shard log₂ latency
/// histograms picked by `pick` from a stats snapshot.
fn latency_percentiles_ms(
    stats: &timecrypt_wire::messages::ServiceStatsWire,
    pick: impl Fn(&timecrypt_wire::messages::ShardStatsWire) -> &Vec<u64>,
) -> [f64; 3] {
    let mut total: Vec<u64> = Vec::new();
    for shard in &stats.shards {
        let hist = pick(shard);
        if hist.len() > total.len() {
            total.resize(hist.len(), 0);
        }
        for (t, &c) in total.iter_mut().zip(hist.iter()) {
            *t += c;
        }
    }
    timecrypt_obs::prom::p50_p95_p99(&total).map(|us| us / 1e3)
}

fn latency_store(store_latency: Duration) -> Arc<dyn KvStore> {
    if store_latency.is_zero() {
        Arc::new(MemKv::new())
    } else {
        Arc::new(LatencyKv::new(MemKv::new(), store_latency))
    }
}

fn run_one(
    workload: &Workload,
    shards: usize,
    producers: usize,
    batch: usize,
    queries: usize,
    store_latency: Duration,
    tracing: bool,
) -> Sample {
    let svc = Arc::new(
        ShardedService::open(
            latency_store(store_latency),
            ServiceConfig {
                shards,
                tracing,
                ..ServiceConfig::default()
            },
        )
        .unwrap(),
    );
    measure_workload(&svc, workload, shards, producers, batch, queries)
}

/// Boots `shards` loopback nodes (each over its own latency-modelled
/// store) and a coordinator routing every shard to its node. The returned
/// servers must stay alive for the cluster to serve.
fn open_remote_cluster(
    shards: usize,
    store_latency: Duration,
) -> (Vec<Server>, Arc<ShardedService>) {
    let mut servers = Vec::with_capacity(shards);
    let mut topology = Vec::with_capacity(shards);
    for shard in 0..shards {
        let node = ShardNode::open(
            latency_store(store_latency),
            NodeConfig {
                total_shards: shards,
                hosted: vec![shard],
                engine: Default::default(),
            },
        )
        .unwrap();
        let server = Server::bind("127.0.0.1:0", Arc::new(node)).unwrap();
        topology.push(ShardSpec::remote(server.addr().to_string()));
        servers.push(server);
    }
    let svc = Arc::new(
        ShardedService::open(
            Arc::new(MemKv::new()), // coordinator-local store unused: all shards remote
            ServiceConfig {
                topology,
                ..ServiceConfig::default()
            },
        )
        .unwrap(),
    );
    (servers, svc)
}

fn run_remote(
    workload: &Workload,
    shards: usize,
    producers: usize,
    batch: usize,
    queries: usize,
    store_latency: Duration,
) -> Sample {
    let (_servers, svc) = open_remote_cluster(shards, store_latency);
    measure_workload(&svc, workload, shards, producers, batch, queries)
}

fn measure_workload(
    svc: &Arc<ShardedService>,
    workload: &Workload,
    shards: usize,
    producers: usize,
    batch: usize,
    queries: usize,
) -> Sample {
    let streams = workload.per_stream.len();
    let chunks = workload
        .per_stream
        .first()
        .map(|v| v.len() as u64)
        .unwrap_or(0);
    for id in 0..streams as u128 {
        svc.create_stream(id, 0, 10_000, 2).unwrap();
    }

    // Ingest: `producers` threads, each owning a disjoint set of streams,
    // submitting per-stream batches of `batch` chunks.
    let t = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let svc = svc.clone();
            let slices: Vec<&Vec<EncryptedChunk>> = workload
                .per_stream
                .iter()
                .enumerate()
                .filter(|(i, _)| i % producers == p)
                .map(|(_, v)| v)
                .collect();
            scope.spawn(move || {
                for stream_chunks in slices {
                    for window in stream_chunks.chunks(batch) {
                        for r in svc.submit_batch(window.to_vec()) {
                            r.unwrap();
                        }
                    }
                }
            });
        }
    });
    let ingest_wall = t.elapsed();
    let total_chunks = streams as u64 * chunks;

    // Queries: multi-stream scatter-gather over 8-stream groups, full range.
    let all: Vec<u128> = (0..streams as u128).collect();
    let t = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let svc = svc.clone();
            let all = &all;
            scope.spawn(move || {
                for q in (p..queries).step_by(producers) {
                    let group: Vec<u128> = all
                        .iter()
                        .cycle()
                        .skip(q % streams)
                        .take(8.min(streams))
                        .copied()
                        .collect();
                    svc.get_stat_range(&group, 0, chunks as i64 * 10_000)
                        .unwrap();
                }
            });
        }
    });
    let query_wall = t.elapsed();

    let stats = svc.stats();
    Sample {
        shards,
        ingest_ops_s: total_chunks as f64 / ingest_wall.as_secs_f64(),
        ingest_wall_ms: ingest_wall.as_secs_f64() * 1e3,
        query_ops_s: queries as f64 / query_wall.as_secs_f64(),
        query_wall_ms: query_wall.as_secs_f64() * 1e3,
        ingest_p: latency_percentiles_ms(&stats, |s| &s.ingest_hist_us),
        query_p: latency_percentiles_ms(&stats, |s| &s.query_hist_us),
    }
}

struct MixedSample {
    query_threads: usize,
    query_ops_s: f64,
    query_wall_ms: f64,
    concurrent_ingest_ops_s: f64,
    /// True when the pre-sealed hot-stream backlog ran dry before the
    /// query phase finished — later queries then ran *without* concurrent
    /// ingest, so the contention numbers are understated.
    ingest_exhausted: bool,
}

/// Mixed read/write on one shard: `query_threads` threads fire full-range
/// scatter-gather queries over all streams (one shard ⇒ one leg, split
/// across the intra-shard reader pool) while a single ingest thread
/// appends to the hot stream 0 for the whole query phase. The query window
/// covers only the pre-ingested prefix, so every reply is identical and
/// checkable while ingest keeps extending the stream.
fn run_mixed(
    workload: &Workload,
    hot: &[EncryptedChunk],
    queries: usize,
    query_threads: usize,
    readers: usize,
    store_latency: Duration,
) -> MixedSample {
    let streams = workload.per_stream.len();
    let chunks = workload
        .per_stream
        .first()
        .map(|v| v.len() as u64)
        .unwrap_or(0);
    let svc = Arc::new(
        ShardedService::open(
            latency_store(store_latency),
            ServiceConfig {
                shards: 1,
                query_readers: readers,
                // Tiny *per-stream* index cache, smaller than one query's
                // node working set: queries actually visit the (latency-
                // modelled) store, which is where serialized readers used
                // to pile up behind the stream lock.
                engine: timecrypt_server::ServerConfig {
                    arity: 16,
                    cache_bytes: 256,
                    ..Default::default()
                },
                ..ServiceConfig::default()
            },
        )
        .unwrap(),
    );
    for id in 0..streams as u128 {
        svc.create_stream(id, 0, 10_000, 2).unwrap();
    }
    for per_stream in &workload.per_stream {
        for window in per_stream.chunks(64) {
            for r in svc.submit_batch(window.to_vec()) {
                r.unwrap();
            }
        }
    }
    let all: Vec<u128> = (0..streams as u128).collect();
    let stop = AtomicBool::new(false);
    let ingested = AtomicU64::new(0);
    let t = Instant::now();
    let mut ingest_wall = Duration::ZERO;
    let mut ingested_during_queries = 0u64;
    std::thread::scope(|scope| {
        {
            let svc = svc.clone();
            let (stop, ingested) = (&stop, &ingested);
            scope.spawn(move || {
                for c in hot {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    svc.insert(c).unwrap();
                    ingested.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let mut handles = Vec::new();
        for p in 0..query_threads {
            let svc = svc.clone();
            let all = &all;
            handles.push(scope.spawn(move || {
                for _ in (p..queries).step_by(query_threads) {
                    // Interior window [chunk 1, chunk chunks−1): misaligned
                    // with the root node's entry spans, so every sub-query
                    // recurses into level-1 edge nodes — a working set that
                    // thrashes the tiny cache and actually pays store
                    // latency, the regime where readers used to serialize.
                    svc.get_stat_range(all, 10_000, (chunks as i64 - 1) * 10_000)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        ingest_wall = t.elapsed();
        // Snapshot before releasing the ingest thread: inserts completed
        // after this point must not count against the measured wall.
        ingested_during_queries = ingested.load(Ordering::Relaxed);
        stop.store(true, Ordering::Relaxed);
    });
    let query_wall = ingest_wall;
    MixedSample {
        query_threads,
        query_ops_s: queries as f64 / query_wall.as_secs_f64(),
        query_wall_ms: query_wall.as_secs_f64() * 1e3,
        concurrent_ingest_ops_s: ingested_during_queries as f64 / ingest_wall.as_secs_f64(),
        ingest_exhausted: ingested_during_queries >= hot.len() as u64,
    }
}

struct DeepTreeSample {
    chunks: u64,
    arity: usize,
    query_ms_seq: f64,
    query_ms_par: f64,
    speedup: f64,
    query_ops_s_par: f64,
}

/// The deep-tree phase: ONE stream with a small arity (many tree levels)
/// behind a latency-modelled store and a tiny index cache, so a single
/// misaligned statistical query pays one store fetch per level down each
/// of its two partial edges. Measures the same query sweep twice over the
/// same ingested store — parallel edge recursion off, then on — so the
/// reported speedup isolates exactly the intra-query parallelism this
/// repo's index added (the edges' store waits overlap; replies are
/// byte-identical, which the run asserts).
fn run_deep_tree(
    chunks: u64,
    arity: usize,
    queries: usize,
    store_latency: Duration,
) -> DeepTreeSample {
    use timecrypt_chunk::ChunkSealer;
    let cfg = StreamConfig {
        schema: DigestSchema::sum_count(),
        ..StreamConfig::new(0, "deep", 0, 10_000)
    };
    let keys = StreamKeyMaterial::with_params(0, [0x77; 16], 26, PrgKind::Aes).unwrap();
    let mut rng = SecureRandom::from_seed_insecure(7);
    let mut sealer = ChunkSealer::new(&cfg, &keys);
    let workload: Vec<EncryptedChunk> = (0..chunks)
        .map(|i| {
            sealer
                .seal(
                    &timecrypt_chunk::PlainChunk {
                        stream: 0,
                        index: i,
                        points: vec![DataPoint::new(i as i64 * 10_000, i as i64)],
                    },
                    &mut rng,
                )
                .unwrap()
        })
        .collect();
    let kv = latency_store(store_latency);
    let open = |parallel: bool| {
        ShardedService::open(
            kv.clone(),
            ServiceConfig {
                shards: 1,
                engine: timecrypt_server::ServerConfig {
                    arity,
                    // Tiny cache: the per-level node fetches really hit the
                    // (latency-modelled) store, the regime where edge
                    // parallelism pays.
                    cache_bytes: 1024,
                    parallel_query: parallel,
                    ..timecrypt_server::ServerConfig::default()
                },
                ..ServiceConfig::default()
            },
        )
        .unwrap()
    };
    // Ingest once (through the batched pipeline) with the sequential
    // service; the parallel service reopens the same store read-only.
    let (ts_s, ts_e) = (10_000i64, (chunks as i64 - 1) * 10_000);
    let measure = |svc: &ShardedService| {
        for _ in 0..3 {
            svc.get_stat_range(&[0], ts_s, ts_e).unwrap(); // warm-up
        }
        let t = Instant::now();
        let mut reply = None;
        for _ in 0..queries {
            reply = Some(svc.get_stat_range(&[0], ts_s, ts_e).unwrap());
        }
        (t.elapsed().as_secs_f64() * 1e3 / queries as f64, reply)
    };
    let (seq_ms, seq_reply) = {
        let svc = open(false);
        svc.create_stream(0, 0, 10_000, 2).unwrap();
        for window in workload.chunks(64) {
            for r in svc.submit_batch(window.to_vec()) {
                r.unwrap();
            }
        }
        measure(&svc)
    };
    let (par_ms, par_reply) = {
        let svc = open(true);
        measure(&svc)
    };
    assert_eq!(
        seq_reply, par_reply,
        "parallel edge recursion must answer byte-identically"
    );
    DeepTreeSample {
        chunks,
        arity,
        query_ms_seq: seq_ms,
        query_ms_par: par_ms,
        speedup: seq_ms / par_ms,
        query_ops_s_par: 1e3 / par_ms,
    }
}

struct ManyStreamsSample {
    /// Wall time of `TimeCryptServer::open` over the seeded store.
    open_ms: f64,
    /// Resident stream states observed after the capped query run.
    resident_max: u64,
    capped_ops_s: f64,
    uncapped_ops_s: f64,
}

/// The many-streams phase: an engine over a store holding `n` registered
/// streams, only `hot` of which carry chunks. Lazy hydration makes open
/// a single directory scan (`open_ms` must scale with the directory, not
/// the per-stream tree state) and bounds resident RAM at `cap` streams;
/// the steady-state query loop (working set inside the cap) compares a
/// capped engine against an uncapped one over the same store — the LRU
/// bookkeeping must be noise once the working set is resident.
fn run_many_streams(n: usize, cap: usize, hot: usize, queries: usize) -> ManyStreamsSample {
    use timecrypt_server::{ServerConfig, TimeCryptServer};
    const HOT_CHUNKS: u64 = 4;
    let hot = hot.min(n).max(1);
    let kv: Arc<dyn KvStore> = Arc::new(MemKv::new());
    {
        let seeder = TimeCryptServer::open(kv.clone(), ServerConfig::default()).unwrap();
        for id in 0..n as u128 {
            seeder.create_stream(id, 0, 10_000, 2).unwrap();
        }
        for per_stream in &build_workload(hot, HOT_CHUNKS).per_stream {
            for c in per_stream {
                seeder.insert(c).unwrap();
            }
        }
    }
    let t = Instant::now();
    let capped = TimeCryptServer::open(
        kv.clone(),
        ServerConfig {
            max_resident_streams: Some(cap),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let open_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(capped.stream_count(), n);
    assert_eq!(
        capped.residency().resident,
        0,
        "open must not hydrate anything"
    );
    let window = HOT_CHUNKS as i64 * 10_000;
    let measure = |engine: &TimeCryptServer| {
        for id in 0..hot as u128 {
            engine.stream_stat(id, 0, window).unwrap(); // warm-up / hydrate
        }
        let t = Instant::now();
        for q in 0..queries {
            engine.stream_stat((q % hot) as u128, 0, window).unwrap();
        }
        queries as f64 / t.elapsed().as_secs_f64()
    };
    let capped_ops_s = measure(&capped);
    let resident_max = capped.residency().resident;
    assert!(
        resident_max <= cap as u64,
        "resident {resident_max} exceeded cap {cap}"
    );
    let uncapped = TimeCryptServer::open(kv, ServerConfig::default()).unwrap();
    let uncapped_ops_s = measure(&uncapped);
    ManyStreamsSample {
        open_ms,
        resident_max,
        capped_ops_s,
        uncapped_ops_s,
    }
}

struct FailoverSample {
    /// Kill of the primary → first acknowledged write on the promoted
    /// backup (covers strike accumulation + the internal retry).
    promotion_ms: f64,
    /// `attach_replica` → replica verified in sync.
    rebuild_ms: f64,
    rebuild_chunks_copied: u64,
    /// Scatter-gather ops/s served after the rebuild completed.
    post_rebuild_query_ops_s: f64,
}

/// The failover/rebuild smoke: a replicated loopback shard loses its
/// primary mid-ingest; the bench measures how long automatic promotion
/// takes to restore write availability, how long rebuilding a freshly
/// attached replacement takes, and what query throughput looks like once
/// the shard is back at R=2.
fn run_failover_rebuild(
    workload: &Workload,
    producers: usize,
    queries: usize,
    store_latency: Duration,
) -> FailoverSample {
    let spawn_node = || {
        let node = ShardNode::open(
            latency_store(store_latency),
            NodeConfig {
                total_shards: 1,
                hosted: vec![0],
                engine: Default::default(),
            },
        )
        .unwrap();
        let server = Server::bind("127.0.0.1:0", Arc::new(node)).unwrap();
        let addr = server.addr().to_string();
        (server, addr)
    };
    let (node_a, addr_a) = spawn_node();
    let (_node_b, addr_b) = spawn_node();
    let svc = Arc::new(
        ShardedService::open(
            Arc::new(MemKv::new()),
            ServiceConfig {
                topology: vec![ShardSpec::remote(addr_a).with_backup(addr_b)],
                pool: timecrypt_wire::pool::PoolConfig {
                    connect_attempts: 2,
                    backoff: Duration::from_millis(1),
                    ..Default::default()
                },
                promote_after: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap(),
    );
    let streams = workload.per_stream.len();
    for id in 0..streams as u128 {
        svc.create_stream(id, 0, 10_000, 2).unwrap();
    }
    // First half of every stream lands while both replicas are healthy.
    let half = workload
        .per_stream
        .first()
        .map(|v| v.len() / 2)
        .unwrap_or(0);
    for per_stream in &workload.per_stream {
        for r in svc.submit_batch(per_stream[..half].to_vec()) {
            r.unwrap();
        }
    }
    // Kill the primary mid-ingest; keep writing until a write is
    // acknowledged again — that wall time is the promotion latency.
    let mut node_a = node_a;
    node_a.shutdown();
    drop(node_a);
    let t = Instant::now();
    let first = &workload.per_stream[0][half];
    while svc.insert(first).is_err() {
        assert!(
            t.elapsed() < Duration::from_secs(60),
            "promotion never restored write availability"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let promotion_ms = t.elapsed().as_secs_f64() * 1e3;
    for (id, per_stream) in workload.per_stream.iter().enumerate() {
        let rest = if id == 0 { half + 1 } else { half };
        for r in svc.submit_batch(per_stream[rest..].to_vec()) {
            r.unwrap();
        }
    }
    // Attach a replacement and wait for the background rebuild.
    let (_node_c, addr_c) = spawn_node();
    let t = Instant::now();
    svc.attach_replica(0, BackendSpec::Remote(addr_c)).unwrap();
    loop {
        let snap = svc.stats();
        if snap.shards[0].rebuilds == 1 && snap.shards[0].in_sync {
            break;
        }
        assert!(
            t.elapsed() < Duration::from_secs(60),
            "replica rebuild did not complete"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
    let rebuild_chunks_copied = svc.stats().shards[0].rebuild_chunks_copied;
    // Query throughput with the shard back at R=2.
    let all: Vec<u128> = (0..streams as u128).collect();
    let chunks = workload
        .per_stream
        .first()
        .map(|v| v.len() as u64)
        .unwrap_or(0);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let svc = svc.clone();
            let all = &all;
            scope.spawn(move || {
                for q in (p..queries).step_by(producers) {
                    let group: Vec<u128> = all
                        .iter()
                        .cycle()
                        .skip(q % all.len())
                        .take(8.min(all.len()))
                        .copied()
                        .collect();
                    svc.get_stat_range(&group, 0, chunks as i64 * 10_000)
                        .unwrap();
                }
            });
        }
    });
    FailoverSample {
        promotion_ms,
        rebuild_ms,
        rebuild_chunks_copied,
        post_rebuild_query_ops_s: queries as f64 / t.elapsed().as_secs_f64(),
    }
}

struct FaultSample {
    ingest_ops_s: f64,
    query_ops_s: f64,
    injected: u64,
    retries: u64,
}

/// The faults phase: a single-shard service over a store injecting a 1%
/// transient error rate on every op plus a 1% chance of a 10 ms stall per
/// put (a p99-delay model of a compacting/overloaded backend). Ingest
/// retries each chunk until acked; queries retry until answered. The
/// reported throughput is the *cost of the faults* — retries plus stalls
/// — next to the fault-free `service_throughput` rows.
fn run_faults(workload: &Workload, queries: usize, seed: u64) -> FaultSample {
    use timecrypt_faults::{FaultPlan, OpKind, StoreFault, StoreRule, Trigger};
    let plan = FaultPlan {
        seed,
        store_rules: vec![
            StoreRule {
                op: None,
                key_prefix: Vec::new(),
                when: Trigger::PerMillion(10_000), // 1% transient errors
                fault: StoreFault::Error,
            },
            StoreRule {
                op: Some(OpKind::Put),
                key_prefix: Vec::new(),
                when: Trigger::PerMillion(10_000), // 1% of puts stall 10 ms
                fault: StoreFault::Delay(Duration::from_millis(10)),
            },
        ],
        net_rules: Vec::new(),
    };
    let store = timecrypt_faults::faulty(Arc::new(MemKv::new()) as Arc<dyn KvStore>, plan);
    let svc = ShardedService::open(
        store.clone(),
        ServiceConfig {
            shards: 1,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    for id in 0..workload.per_stream.len() as u128 {
        svc.create_stream(id, 0, 10_000, 2).unwrap();
    }
    let mut retries = 0u64;
    let mut chunks_acked = 0u64;
    let ingest_start = Instant::now();
    for (id, chunks) in workload.per_stream.iter().enumerate() {
        for chunk in chunks {
            loop {
                match svc.insert(chunk) {
                    Ok(()) => break,
                    Err(e) => {
                        retries += 1;
                        assert!(
                            retries < 1_000_000,
                            "faults phase: stream {id} never acked: {e}"
                        );
                    }
                }
            }
            chunks_acked += 1;
        }
    }
    let ingest_wall = ingest_start.elapsed();
    let all: Vec<u128> = (0..workload.per_stream.len() as u128).collect();
    let window = workload.per_stream[0].len() as i64 * 10_000;
    let query_start = Instant::now();
    for q in 0..queries {
        loop {
            if svc.get_stat_range(&all, 0, window).is_ok() {
                break;
            }
            retries += 1;
            assert!(
                retries < 1_000_000,
                "faults phase: query {q} never answered"
            );
        }
    }
    let query_wall = query_start.elapsed();
    FaultSample {
        ingest_ops_s: chunks_acked as f64 / ingest_wall.as_secs_f64(),
        query_ops_s: queries as f64 / query_wall.as_secs_f64(),
        injected: store.injected_total(),
        retries,
    }
}

fn main() {
    let shard_sweep: Vec<usize> = std::env::var("TC_SHARDS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let streams = env_usize("TC_STREAMS", 32);
    let chunks = env_usize("TC_CHUNKS", 64) as u64;
    let producers = env_usize("TC_PRODUCERS", 8);
    let batch = env_usize("TC_BATCH", 16);
    let queries = env_usize("TC_QUERIES", 200);
    let store_latency = Duration::from_micros(env_usize("TC_STORE_LAT_US", 50) as u64);

    eprintln!("sealing workload: {streams} streams x {chunks} chunks ...");
    let workload = build_workload(streams, chunks);

    for &shards in &shard_sweep {
        // Warm-up run keeps allocator/page-cache effects out of the sweep.
        let _ = run_one(
            &workload,
            shards,
            producers,
            batch,
            16.min(queries),
            store_latency,
            false,
        );
        let s = run_one(
            &workload,
            shards,
            producers,
            batch,
            queries,
            store_latency,
            false,
        );
        println!(
            "{{\"bench\":\"service_throughput\",\"shards\":{},\"streams\":{},\"chunks_per_stream\":{},\"producers\":{},\"batch\":{},\"ingest_ops_s\":{:.0},\"ingest_wall_ms\":{:.1},\"ingest_p50_ms\":{:.3},\"ingest_p95_ms\":{:.3},\"ingest_p99_ms\":{:.3},\"queries\":{},\"query_ops_s\":{:.0},\"query_wall_ms\":{:.1},\"query_p50_ms\":{:.3},\"query_p95_ms\":{:.3},\"query_p99_ms\":{:.3}}}",
            s.shards,
            streams,
            chunks,
            producers,
            batch,
            s.ingest_ops_s,
            s.ingest_wall_ms,
            s.ingest_p[0],
            s.ingest_p[1],
            s.ingest_p[2],
            queries,
            s.query_ops_s,
            s.query_wall_ms,
            s.query_p[0],
            s.query_p[1],
            s.query_p[2],
        );
    }

    // Tracing-overhead phase: the same single-shard-count workload with
    // request tracing *disabled* (the default) and *enabled*. The `off`
    // run is the one every other phase measures — this row exists so the
    // <2% disabled-cost claim and the enabled cost are both visible in
    // the perf trajectory.
    if env_usize("TC_TRACING", 1) != 0 {
        let shards = shard_sweep.last().copied().unwrap_or(4);
        let off = run_one(
            &workload,
            shards,
            producers,
            batch,
            queries,
            store_latency,
            false,
        );
        let on = run_one(
            &workload,
            shards,
            producers,
            batch,
            queries,
            store_latency,
            true,
        );
        println!(
            "{{\"bench\":\"tracing_overhead\",\"shards\":{},\"streams\":{},\"chunks_per_stream\":{},\"producers\":{},\"batch\":{},\"queries\":{},\"ingest_ops_s\":{:.0},\"query_ops_s\":{:.0},\"traced_ingest_ops_s\":{:.0},\"traced_query_ops_s\":{:.0}}}",
            shards,
            streams,
            chunks,
            producers,
            batch,
            queries,
            off.ingest_ops_s,
            off.query_ops_s,
            on.ingest_ops_s,
            on.query_ops_s,
        );
    }

    // Remote phase: the same workload through a loopback multi-node
    // cluster (one node per shard, each over its own store). The delta
    // against `service_throughput` at equal shard count is the cost of
    // going over the wire.
    if env_usize("TC_REMOTE", 1) != 0 {
        let remote_sweep: Vec<usize> = std::env::var("TC_REMOTE_SHARDS")
            .unwrap_or_else(|_| "1,4".into())
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect();
        for &shards in &remote_sweep {
            let _ = run_remote(
                &workload,
                shards,
                producers,
                batch,
                16.min(queries),
                store_latency,
            );
            let s = run_remote(&workload, shards, producers, batch, queries, store_latency);
            println!(
                "{{\"bench\":\"remote_throughput\",\"shards\":{},\"nodes\":{},\"streams\":{},\"chunks_per_stream\":{},\"producers\":{},\"batch\":{},\"ingest_ops_s\":{:.0},\"ingest_wall_ms\":{:.1},\"ingest_p50_ms\":{:.3},\"ingest_p95_ms\":{:.3},\"ingest_p99_ms\":{:.3},\"queries\":{},\"query_ops_s\":{:.0},\"query_wall_ms\":{:.1},\"query_p50_ms\":{:.3},\"query_p95_ms\":{:.3},\"query_p99_ms\":{:.3}}}",
                s.shards,
                s.shards,
                streams,
                chunks,
                producers,
                batch,
                s.ingest_ops_s,
                s.ingest_wall_ms,
                s.ingest_p[0],
                s.ingest_p[1],
                s.ingest_p[2],
                queries,
                s.query_ops_s,
                s.query_wall_ms,
                s.query_p[0],
                s.query_p[1],
                s.query_p[2],
            );
        }
    }

    // Failover/rebuild phase: a replicated loopback shard loses its
    // primary mid-ingest. Reports promotion latency (write availability
    // restored), replica-rebuild wall time, and post-rebuild query ops/s.
    if env_usize("TC_FAILOVER", 1) != 0 {
        let s = run_failover_rebuild(&workload, producers, queries, store_latency);
        println!(
            "{{\"bench\":\"failover_rebuild\",\"streams\":{},\"chunks_per_stream\":{},\"producers\":{},\"promotion_ms\":{:.1},\"rebuild_ms\":{:.1},\"rebuild_chunks_copied\":{},\"queries\":{},\"post_rebuild_query_ops_s\":{:.0}}}",
            streams,
            chunks,
            producers,
            s.promotion_ms,
            s.rebuild_ms,
            s.rebuild_chunks_copied,
            queries,
            s.post_rebuild_query_ops_s,
        );
    }

    // Faults phase: the single-shard workload under seeded store faults
    // (1% transient errors, 1% of puts stalled 10 ms) with retry-until-
    // acked ingest. Reported, not gated (see compare.rs): the number is
    // the price of the fault model, not a regression signal.
    if env_usize("TC_FAULTS", 1) != 0 {
        let seed = env_usize("TC_FAULT_SEED", 7) as u64;
        let s = run_faults(&workload, queries, seed);
        println!(
            "{{\"bench\":\"faults\",\"streams\":{},\"chunks_per_stream\":{},\"store_err_pm\":10000,\"put_delay_pm\":10000,\"delay_ms\":10,\"queries\":{},\"faulty_ingest_ops_s\":{:.0},\"faulty_query_ops_s\":{:.0},\"injected_faults\":{},\"retries\":{}}}",
            streams,
            chunks,
            queries,
            s.ingest_ops_s,
            s.query_ops_s,
            s.injected,
            s.retries,
        );
    }

    // Deep-tree phase: single-query latency down a many-level tree,
    // sequential vs parallel edge recursion over the same store.
    if env_usize("TC_DEEP", 1) != 0 {
        let deep_chunks = env_usize("TC_DEEP_CHUNKS", 8192) as u64;
        let deep_arity = env_usize("TC_DEEP_ARITY", 4).max(2);
        let deep_queries = env_usize("TC_DEEP_QUERIES", 30).max(1);
        eprintln!("sealing deep-tree workload: {deep_chunks} chunks (arity {deep_arity}) ...");
        let s = run_deep_tree(deep_chunks, deep_arity, deep_queries, store_latency);
        println!(
            "{{\"bench\":\"deep_tree\",\"chunks\":{},\"arity\":{},\"queries\":{},\"query_ms_seq\":{:.3},\"query_ms_par\":{:.3},\"speedup\":{:.2},\"query_ops_s_par\":{:.0}}}",
            s.chunks, s.arity, deep_queries, s.query_ms_seq, s.query_ms_par, s.speedup, s.query_ops_s_par,
        );
    }

    // Many-streams phase: open time and steady-state query throughput of
    // a bounded-residency engine as stored stream counts grow far past
    // the cap — the lazy-hydration claim, measured.
    if env_usize("TC_MANY", 1) != 0 {
        let many_sweep: Vec<usize> = std::env::var("TC_MANY_STREAMS")
            .unwrap_or_else(|_| "10000,100000,1000000".into())
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect();
        let cap = env_usize("TC_MAX_RESIDENT", 1024).max(1);
        let hot = env_usize("TC_MANY_HOT", 32);
        let many_queries = env_usize("TC_MANY_QUERIES", 200_000);
        for &n in &many_sweep {
            eprintln!("many-streams: seeding {n} streams (cap {cap}) ...");
            let s = run_many_streams(n, cap, hot, many_queries);
            println!(
                "{{\"bench\":\"many_streams\",\"streams\":{},\"cap\":{},\"hot\":{},\"queries\":{},\"open_ms\":{:.1},\"resident_max\":{},\"capped_ops_s\":{:.0},\"uncapped_ops_s\":{:.0}}}",
                n,
                cap,
                hot.min(n).max(1),
                many_queries,
                s.open_ms,
                s.resident_max,
                s.capped_ops_s,
                s.uncapped_ops_s,
            );
        }
    }

    // Mixed read/write phase: query ops/s vs query-thread count on ONE
    // shard, with ingest running the whole time. Scaling here is exactly
    // the read-path lock split: before it, all readers serialized behind
    // the hot stream's per-stream lock.
    if env_usize("TC_MIXED", 1) == 0 {
        return;
    }
    if chunks < 3 {
        // The misaligned interior window [chunk 1, chunk chunks−1) needs
        // at least one covered chunk.
        eprintln!("skipping mixed phase: TC_CHUNKS={chunks} < 3");
        return;
    }
    let thread_sweep: Vec<usize> = std::env::var("TC_QUERY_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let mixed_queries = env_usize("TC_MIXED_QUERIES", 400);
    let readers = env_usize("TC_READERS", 4);
    eprintln!("sealing hot-stream ingest backlog for the mixed phase ...");
    let hot: Vec<EncryptedChunk> = {
        let cfg = StreamConfig {
            schema: DigestSchema::sum_count(),
            ..StreamConfig::new(0, "bench", 0, 10_000)
        };
        let keys = StreamKeyMaterial::with_params(0, [0x5a; 16], 22, PrgKind::Aes).unwrap();
        let mut rng = SecureRandom::from_seed_insecure(99);
        let mut sealer = timecrypt_chunk::ChunkSealer::new(&cfg, &keys);
        (chunks..chunks + 20_000)
            .map(|i| {
                sealer
                    .seal(
                        &PlainChunk {
                            stream: 0,
                            index: i,
                            points: vec![DataPoint::new(i as i64 * 10_000, i as i64)],
                        },
                        &mut rng,
                    )
                    .unwrap()
            })
            .collect()
    };
    for &t in &thread_sweep {
        // Warm-up, then the measured run.
        let _ = run_mixed(
            &workload,
            &hot,
            16.min(mixed_queries),
            t,
            readers,
            store_latency,
        );
        let s = run_mixed(&workload, &hot, mixed_queries, t, readers, store_latency);
        if s.ingest_exhausted {
            eprintln!(
                "warning: hot-stream backlog ran dry at {} query threads; \
                 concurrent-ingest pressure understated",
                s.query_threads
            );
        }
        println!(
            "{{\"bench\":\"mixed_rw\",\"shards\":1,\"streams\":{},\"chunks_per_stream\":{},\"readers\":{},\"query_threads\":{},\"queries\":{},\"query_ops_s\":{:.0},\"query_wall_ms\":{:.1},\"concurrent_ingest_ops_s\":{:.0},\"ingest_exhausted\":{}}}",
            streams,
            chunks,
            readers,
            s.query_threads,
            mixed_queries,
            s.query_ops_s,
            s.query_wall_ms,
            s.concurrent_ingest_ops_s,
            s.ingest_exhausted,
        );
    }
}
