//! Fig. 8: latency of statistical queries over one month of mhealth data at
//! granularities from one minute to one month, plaintext vs TimeCrypt.
//!
//! One month at Δ = 10 s is 259,200 chunks (the paper's 121 M records at
//! 50 Hz). A "view at granularity g" fetches one aggregate per g-bucket
//! across the whole month: 40,320 aggregates at minute granularity — where
//! the paper sees the largest TimeCrypt overhead (1.51x, dominated by
//! 40,320 individual decryptions) — down to a single aggregate for the
//! month (1.01x).
//!
//! ```sh
//! cargo run -p timecrypt-bench --release --bin fig8
//! ```

use std::sync::Arc;
use std::time::Instant;
use timecrypt_bench::measure::format_duration;
use timecrypt_core::heac::{decrypt_range_sum, HeacEncryptor};
use timecrypt_core::TreeKd;
use timecrypt_crypto::PrgKind;
use timecrypt_index::{AggTree, TreeConfig};
use timecrypt_store::MemKv;

const CHUNKS_PER_MIN: u64 = 6; // Δ = 10 s
const MONTH_MINUTES: u64 = 28 * 24 * 60; // 40320, as in the paper
const MONTH_CHUNKS: u64 = MONTH_MINUTES * CHUNKS_PER_MIN; // 241,920

fn build(encrypted: bool, kd: &TreeKd) -> AggTree<Vec<u64>> {
    let tree: AggTree<Vec<u64>> = AggTree::open(
        Arc::new(MemKv::new()),
        1,
        TreeConfig {
            arity: 64,
            cache_bytes: 1 << 30,
            ..TreeConfig::default()
        },
    )
    .unwrap();
    let enc = HeacEncryptor::new(kd);
    for i in 0..MONTH_CHUNKS {
        // sum, count for 500 points/chunk.
        let digest = vec![(70 * 500 + i % 997), 500];
        let d = if encrypted {
            enc.encrypt_digest(i, &digest).unwrap()
        } else {
            digest
        };
        tree.append(d).unwrap();
    }
    tree
}

/// Fetches the full month view at `bucket_chunks` granularity, decrypting
/// each aggregate when `kd` is provided.
fn view(tree: &AggTree<Vec<u64>>, bucket_chunks: u64, kd: Option<&TreeKd>) -> std::time::Duration {
    let start = Instant::now();
    let mut lo = 0u64;
    while lo < MONTH_CHUNKS {
        let hi = (lo + bucket_chunks).min(MONTH_CHUNKS);
        let d = tree.query(lo, hi).unwrap();
        match kd {
            Some(kd) => {
                std::hint::black_box(decrypt_range_sum(kd, lo, hi, &d).unwrap());
            }
            None => {
                std::hint::black_box(&d);
            }
        }
        lo = hi;
    }
    start.elapsed()
}

fn main() {
    println!("=== Fig. 8: one-month view latency by granularity (28 days, Δ=10s, {MONTH_CHUNKS} chunks) ===\n");
    let kd = TreeKd::new([7u8; 16], 30, PrgKind::Aes).unwrap();
    println!("building plaintext index ({MONTH_CHUNKS} chunks)...");
    let plain = build(false, &kd);
    println!("building TimeCrypt index...");
    let tc = build(true, &kd);

    let granularities: &[(&str, u64)] = &[
        ("minute", CHUNKS_PER_MIN),
        ("hour", CHUNKS_PER_MIN * 60),
        ("day", CHUNKS_PER_MIN * 60 * 24),
        ("week", CHUNKS_PER_MIN * 60 * 24 * 7),
        ("month", MONTH_CHUNKS),
    ];

    println!(
        "\n{:<8} {:>10} {:>14} {:>14} {:>9}",
        "gran", "aggregates", "Plaintext", "TimeCrypt", "overhead"
    );
    for &(name, bucket) in granularities {
        let aggs = MONTH_CHUNKS.div_ceil(bucket);
        let tp = view(&plain, bucket, None);
        let tt = view(&tc, bucket, Some(&kd));
        println!(
            "{:<8} {:>10} {:>14} {:>14} {:>8.2}x",
            name,
            aggs,
            format_duration(tp),
            format_duration(tt),
            tt.as_secs_f64() / tp.as_secs_f64(),
        );
    }

    println!("\nPaper shape check: overhead is largest at minute granularity");
    println!("(many per-aggregate decryptions; paper 1.51x) and approaches 1.0x");
    println!("at month granularity (a single decryption; paper 1.01x).");
}
