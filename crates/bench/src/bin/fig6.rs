//! Fig. 6: key-derivation cost vs keystream size for the three PRG
//! instantiations (software AES, SHA-256, AES-NI).
//!
//! A single key derivation in a tree with n = 2^h keys costs h PRG calls
//! (one walk from the root). The paper sweeps 2^5 … 2^60 keys and finds
//! AES-NI fastest (2.5 µs at 2^30), SHA-256 in the middle, software AES
//! slowest.
//!
//! ```sh
//! cargo run -p timecrypt-bench --release --bin fig6
//! ```

use timecrypt_bench::measure::time_avg;
use timecrypt_core::TreeKd;
use timecrypt_crypto::PrgKind;

fn main() {
    let prgs = [PrgKind::AesSoftware, PrgKind::Sha256, PrgKind::Aes];
    println!("=== Fig. 6: single key derivation cost vs number of keys 2^h ===\n");
    print!("{:>4}", "h");
    for p in prgs {
        print!(" {:>12}", p.label());
    }
    println!();
    for h in (5..=60).step_by(5) {
        print!("{:>4}", h);
        for prg in prgs {
            let tree = TreeKd::new([3u8; 16], h, prg).unwrap();
            // Derive a leaf deep in the tree (max index keeps all h levels).
            let leaf = (1u64 << h) - 1;
            let iters = match prg {
                PrgKind::AesSoftware => 2_000,
                _ => 20_000,
            };
            let t = time_avg(iters, || {
                std::hint::black_box(tree.leaf(leaf).unwrap());
            });
            print!(" {:>10.2}µs", t.as_nanos() as f64 / 1000.0);
        }
        println!();
    }
    println!("\nPaper shape check: cost grows linearly in h (log n); ordering");
    println!("AES (software) > SHA256 > AES-NI at every height.");
    if !std::arch::is_x86_feature_detected!("aes") {
        println!("NOTE: this CPU lacks AES-NI; the AES-NI column fell back to software.");
    }
}
