//! Table 2: micro ADD cost, index size, average ingest time, and average
//! worst-case query time for Paillier / EC-ElGamal / TimeCrypt / Plaintext.
//!
//! ```sh
//! cargo run -p timecrypt-bench --release --bin table2            # scaled sizes
//! cargo run -p timecrypt-bench --release --bin table2 -- --full  # paper sizes (1M chunks)
//! ```
//!
//! The paper runs 1k / 1M / 100M chunks on AWS; by default this harness runs
//! 1k / 100k for TimeCrypt & plaintext and 1k for the strawman schemes
//! (whose per-op cost is 3–4 orders of magnitude higher — exactly the point
//! of the table). `--full` raises TimeCrypt/plaintext to 1M.

use std::sync::Arc;
use std::time::Instant;
use timecrypt_baselines::{EcElGamal, ElGamalDigest, Paillier, PaillierDigest};
use timecrypt_bench::measure::{format_bytes, format_duration, time_avg};
use timecrypt_core::heac::{decrypt_range_sum, HeacEncryptor};
use timecrypt_core::TreeKd;
use timecrypt_crypto::{PrgKind, SecureRandom};
use timecrypt_index::{AggTree, HomDigest, TreeConfig};
use timecrypt_store::MemKv;

fn tree_cfg() -> TreeConfig {
    TreeConfig {
        arity: 64,
        cache_bytes: 512 << 20,
        ..TreeConfig::default()
    }
}

/// Ingests `n` digests produced by `make`, returning (avg ingest, tree).
fn run_ingest<D: HomDigest>(
    n: u64,
    mut make: impl FnMut(u64) -> D,
) -> (std::time::Duration, AggTree<D>) {
    let kv = Arc::new(MemKv::new());
    let tree: AggTree<D> = AggTree::open(kv, 1, tree_cfg()).unwrap();
    let start = Instant::now();
    for i in 0..n {
        tree.append(make(i)).unwrap();
    }
    (start.elapsed() / n as u32, tree)
}

/// Worst-case-alignment queries: [1, n-1) forces drill-down on both edges.
fn run_query<D: HomDigest>(
    tree: &AggTree<D>,
    n: u64,
    iters: u64,
    mut post: impl FnMut(D),
) -> std::time::Duration {
    let start = Instant::now();
    for _ in 0..iters {
        let d = tree.query(1, n - 1).unwrap();
        post(d);
    }
    start.elapsed() / iters as u32
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let tc_sizes: &[u64] = if full {
        &[1_000, 1_000_000]
    } else {
        &[1_000, 100_000]
    };
    let straw_sizes: &[u64] = &[1_000];
    let mut rng = SecureRandom::from_seed_insecure(1);

    println!(
        "=== Table 2: index micro-operations (sum digest, 64-ary tree, 128-bit security) ===\n"
    );

    // ── Micro ADD ──────────────────────────────────────────────────────
    println!("-- micro ADD (single homomorphic addition) --");
    let mut acc = 0u64;
    let add_plain = time_avg(10_000_000, || acc = acc.wrapping_add(12345));
    std::hint::black_box(acc);
    println!("  Plaintext/TimeCrypt ADD: {}", format_duration(add_plain));

    println!("  generating Paillier-3072 keypair (one-time)...");
    let paillier = Paillier::generate(3072, &mut rng);
    let pa = paillier.public.encrypt(1, &mut rng);
    let pb = paillier.public.encrypt(2, &mut rng);
    let mut pacc = paillier.public.zero();
    let add_paillier = time_avg(200, || pacc = paillier.public.add(&pa, &pb));
    println!(
        "  Paillier ADD:            {}",
        format_duration(add_paillier)
    );

    let elgamal = EcElGamal::generate(1 << 20, &mut rng);
    let ea = elgamal.encrypt(1, &mut rng);
    let eb = elgamal.encrypt(2, &mut rng);
    let mut eacc = EcElGamal::zero();
    let add_elgamal = time_avg(500, || eacc = EcElGamal::add(&ea, &eb));
    println!(
        "  EC-ElGamal ADD:          {}\n",
        format_duration(add_elgamal)
    );

    // ── Plaintext & TimeCrypt: ingest / size / query ───────────────────
    let kd = TreeKd::new([7u8; 16], 30, PrgKind::Aes).unwrap();
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>14}",
        "scheme", "chunks", "index size", "avg ingest", "avg query(wc)"
    );
    for &n in tc_sizes {
        // Plaintext: digest in the clear.
        let (ingest, tree) = run_ingest(n, |i| vec![i]);
        let size = tree.stats().unwrap().stored_bytes;
        let query = run_query(&tree, n, 2_000, |d| {
            std::hint::black_box(d[0]);
        });
        println!(
            "{:<12} {:>10} {:>14} {:>14} {:>14}",
            "Plaintext",
            n,
            format_bytes(size),
            format_duration(ingest),
            format_duration(query)
        );

        // TimeCrypt: HEAC-encrypted digest; ingest includes encryption,
        // query includes boundary-key decryption.
        let enc = HeacEncryptor::new(&kd);
        let (ingest, tree) = run_ingest(n, |i| enc.encrypt_digest(i, &[i]).unwrap());
        let size = tree.stats().unwrap().stored_bytes;
        let query = run_query(&tree, n, 2_000, |d| {
            std::hint::black_box(decrypt_range_sum(&kd, 1, n - 1, &d).unwrap());
        });
        println!(
            "{:<12} {:>10} {:>14} {:>14} {:>14}",
            "TimeCrypt",
            n,
            format_bytes(size),
            format_duration(ingest),
            format_duration(query)
        );
    }

    // ── Strawman schemes ───────────────────────────────────────────────
    for &n in straw_sizes {
        let (ingest, tree) = run_ingest(n, |i| {
            PaillierDigest(vec![paillier
                .public
                .encrypt(i, &mut SecureRandom::from_seed_insecure(i))])
        });
        let size = tree.stats().unwrap().stored_bytes;
        let query = run_query(&tree, n, 5, |d| {
            std::hint::black_box(paillier.decrypt(&d.0[0]));
        });
        println!(
            "{:<12} {:>10} {:>14} {:>14} {:>14}",
            "Paillier",
            n,
            format_bytes(size),
            format_duration(ingest),
            format_duration(query)
        );

        let (ingest, tree) = run_ingest(n, |i| {
            ElGamalDigest(vec![
                elgamal.encrypt(i % 100, &mut SecureRandom::from_seed_insecure(i))
            ])
        });
        let size = tree.stats().unwrap().stored_bytes;
        let query = run_query(&tree, n, 5, |d| {
            std::hint::black_box(elgamal.decrypt(&d.0[0]));
        });
        println!(
            "{:<12} {:>10} {:>14} {:>14} {:>14}",
            "EC-ElGamal",
            n,
            format_bytes(size),
            format_duration(ingest),
            format_duration(query)
        );
    }

    println!("\nPaper shape check: TimeCrypt ≈ plaintext (1.1–1.8x); strawman 3+ orders");
    println!("of magnitude slower on ingest/query; Paillier ~96x index expansion");
    println!("(768B/ct at 3072-bit), EC-ElGamal ~16x (130B/ct uncompressed points),");
    println!("TimeCrypt 1x (8B/ct, zero expansion).");
}
