//! Diffs two `throughput` bench JSON files with a tolerance — the perf
//! regression gate.
//!
//! ```sh
//! cargo run --release -p timecrypt-bench --bin compare -- \
//!     BENCH_seed.json bench_current.json --tolerance 0.2
//! ```
//!
//! Rows are matched by their configuration fields (`bench` phase plus
//! every integer knob such as `shards`, `query_threads`, `chunks`);
//! throughput metrics (`*_ops_s`, `speedup`) are higher-better and fail
//! the run when the current value drops more than `tolerance` below the
//! baseline. Latency fields are reported but not gated (they are the
//! reciprocal story of the ops/s fields and noisier). Rows present only
//! in the current file (new phases) pass with a note; rows present only
//! in the baseline fail — a silently dropped phase must not pass the
//! gate.
//!
//! The parser handles exactly the flat one-object-per-line JSON the bench
//! bins emit (string/number/bool values, no nesting) — by design, so the
//! gate needs no JSON dependency.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// A flat JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Bool(bool),
}

impl Value {
    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn render(&self) -> String {
        match self {
            Value::Num(n) => format!("{n}"),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => format!("{b}"),
        }
    }
}

/// Parses one flat JSON object line. Returns `None` for lines that are not
/// objects (stderr noise that leaked into a capture, blank lines).
fn parse_line(line: &str) -> Option<BTreeMap<String, Value>> {
    let line = line.trim();
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut out = BTreeMap::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        // Key: a quoted string.
        rest = rest.strip_prefix('"')?;
        let key_end = rest.find('"')?;
        let key = rest[..key_end].to_string();
        rest = rest[key_end + 1..]
            .trim_start()
            .strip_prefix(':')?
            .trim_start();
        // Value: quoted string, bool, or number (no nesting in our schema).
        let value;
        if let Some(s) = rest.strip_prefix('"') {
            let end = s.find('"')?;
            value = Value::Str(s[..end].to_string());
            rest = &s[end + 1..];
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            let token = rest[..end].trim();
            value = match token {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                _ => Value::Num(token.parse().ok()?),
            };
            rest = &rest[end..];
        }
        out.insert(key, value);
        rest = rest.trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Some(out)
}

/// The identity of a row: its phase plus every non-metric field. Metrics
/// are the measured outputs; everything else is configuration.
fn row_key(row: &BTreeMap<String, Value>) -> String {
    row.iter()
        .filter(|(k, _)| !is_metric(k))
        .map(|(k, v)| format!("{k}={}", v.render()))
        .collect::<Vec<_>>()
        .join(",")
}

/// Measured outputs. `higher_better` ones are gated; the rest reported.
fn is_metric(key: &str) -> bool {
    key.contains("_ops_s")
        || key.contains("_ms")
        || key == "speedup"
        || key == "rebuild_chunks_copied"
        || key == "ingest_exhausted"
        || key == "injected_faults"
        || key == "retries"
}

fn is_gated(key: &str) -> bool {
    // `concurrent_ingest_ops_s` is how much ingest *happened to complete*
    // during the mixed phase's query window — when queries get faster the
    // window shrinks and the value legitimately collapses, so gating it
    // would punish query-side wins. Reported, not gated.
    //
    // `faulty_*` (the fault-injection phase) runs under a seeded
    // probabilistic store-fault plan: throughput there measures the *cost
    // of the faults* (retries, injected delays), not a code path whose
    // regression should block a merge. Reported, not gated.
    (key.contains("_ops_s") && key != "concurrent_ingest_ops_s" && !key.starts_with("faulty_"))
        || key == "speedup"
}

fn load(path: &str) -> Vec<BTreeMap<String, Value>> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    text.lines().filter_map(parse_line).collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 0.20f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            tolerance = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("compare: --tolerance needs a fraction, e.g. 0.2");
                    std::process::exit(2);
                });
            i += 2;
        } else {
            files.push(args[i].clone());
            i += 1;
        }
    }
    if files.len() != 2 {
        eprintln!("usage: compare <baseline.json> <current.json> [--tolerance 0.2]");
        return ExitCode::from(2);
    }
    let baseline = load(&files[0]);
    let current = load(&files[1]);
    let base_by_key: BTreeMap<String, &BTreeMap<String, Value>> =
        baseline.iter().map(|r| (row_key(r), r)).collect();
    let cur_keys: Vec<String> = current.iter().map(row_key).collect();

    let mut regressions = 0usize;
    for (row, key) in current.iter().zip(&cur_keys) {
        let Some(base) = base_by_key.get(key) else {
            println!("NEW     {key} (no baseline row; not gated)");
            continue;
        };
        for (metric, value) in row.iter().filter(|(k, _)| is_metric(k)) {
            let (Some(cur), Some(prev)) =
                (value.as_num(), base.get(metric).and_then(Value::as_num))
            else {
                continue;
            };
            let ratio = if prev > 0.0 { cur / prev } else { f64::NAN };
            let gated = is_gated(metric);
            let regressed = gated && prev > 0.0 && cur < prev * (1.0 - tolerance);
            if regressed {
                regressions += 1;
            }
            println!(
                "{} {key} :: {metric}: {prev:.1} -> {cur:.1} ({:+.1}%){}",
                if regressed { "REGRESS" } else { "ok     " },
                (ratio - 1.0) * 100.0,
                if gated { "" } else { " [not gated]" },
            );
        }
    }
    for key in base_by_key.keys() {
        if !cur_keys.iter().any(|k| k == key) {
            println!("MISSING {key} (baseline row absent from current run)");
            regressions += 1;
        }
    }
    if regressions > 0 {
        eprintln!(
            "compare: {regressions} regression(s) beyond {:.0}% tolerance",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "compare: no regressions beyond {:.0}% tolerance",
        tolerance * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_lines() {
        let row = parse_line(
            r#"{"bench":"service_throughput","shards":2,"ingest_ops_s":3892,"ok":true}"#,
        )
        .unwrap();
        assert_eq!(row["bench"], Value::Str("service_throughput".into()));
        assert_eq!(row["shards"], Value::Num(2.0));
        assert_eq!(row["ingest_ops_s"], Value::Num(3892.0));
        assert_eq!(row["ok"], Value::Bool(true));
        assert!(parse_line("sealing workload ...").is_none());
        assert!(parse_line("").is_none());
    }

    #[test]
    fn key_uses_config_not_metrics() {
        let a =
            parse_line(r#"{"bench":"x","shards":2,"ingest_ops_s":100,"query_ops_s":5}"#).unwrap();
        let b =
            parse_line(r#"{"bench":"x","shards":2,"ingest_ops_s":900,"query_ops_s":1}"#).unwrap();
        assert_eq!(row_key(&a), row_key(&b));
        let c = parse_line(r#"{"bench":"x","shards":4,"ingest_ops_s":100}"#).unwrap();
        assert_ne!(row_key(&a), row_key(&c));
    }

    #[test]
    fn gating_covers_throughput_not_latency() {
        assert!(is_gated("ingest_ops_s"));
        assert!(is_gated("query_ops_s_par"));
        assert!(is_gated("speedup"));
        assert!(!is_gated("query_wall_ms"));
        assert!(!is_gated("promotion_ms"));
        assert!(!is_gated("concurrent_ingest_ops_s"));
        assert!(!is_gated("faulty_ingest_ops_s"));
        assert!(!is_gated("faulty_query_ops_s"));
        assert!(is_metric("faulty_ingest_ops_s"));
        assert!(is_metric("concurrent_ingest_ops_s"));
        assert!(is_metric("query_ms_par"));
    }
}
