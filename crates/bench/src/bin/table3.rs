//! Table 3: per-operation encryption/decryption cost of TimeCrypt vs
//! Paillier vs EC-ElGamal on a laptop-class machine and an IoT-class device.
//!
//! The laptop column is *measured* on this machine (≥80-bit security:
//! Paillier-1024, P-256, TimeCrypt with a 2^30-key hash tree, exactly the
//! paper's setting). The IoT column is *modeled* by scaling the measured
//! laptop cost with the per-primitive IoT/laptop ratios from the paper's
//! own Table 3 (OpenMote, 32-bit ARM M3 @ 32 MHz) — see DESIGN.md §5 for
//! why this substitution preserves the comparison.
//!
//! ```sh
//! cargo run -p timecrypt-bench --release --bin table3
//! ```

use timecrypt_baselines::{EcElGamal, Paillier};
use timecrypt_bench::measure::{format_duration, time_avg};
use timecrypt_core::heac::{decrypt_range_sum, HeacEncryptor};
use timecrypt_core::TreeKd;
use timecrypt_crypto::{PrgKind, SecureRandom};

/// IoT/laptop slowdown ratios derived from the paper's Table 3.
const IOT_RATIO_TIMECRYPT: f64 = 1.08e-3 / 5.08e-6; // ≈ 212x
const IOT_RATIO_PAILLIER_ENC: f64 = 1.59 / 30.0e-3; // ≈ 53x
const IOT_RATIO_PAILLIER_DEC: f64 = 1.62 / 15.0e-3; // ≈ 108x
const IOT_RATIO_ELGAMAL_ENC: f64 = 252.0e-3 / 1.4e-3; // ≈ 180x

fn scaled(d: std::time::Duration, ratio: f64) -> std::time::Duration {
    d.mul_f64(ratio)
}

fn main() {
    let mut rng = SecureRandom::from_seed_insecure(1);
    println!("=== Table 3: crypto operation cost, >=80-bit security, 32-bit values ===\n");

    // TimeCrypt: 2^30-key tree; enc = two key derivations + add/sub; dec same.
    let kd = TreeKd::new([7u8; 16], 30, PrgKind::Aes).unwrap();
    let enc = HeacEncryptor::new(&kd);
    let t_enc = time_avg(20_000, || {
        std::hint::black_box(enc.encrypt_digest(123_456, &[42]).unwrap());
    });
    let ct = enc.encrypt_digest(123_456, &[42]).unwrap();
    let t_dec = time_avg(20_000, || {
        std::hint::black_box(decrypt_range_sum(&kd, 123_456, 123_457, &ct).unwrap());
    });

    // Paillier-1024 (80-bit).
    println!("generating Paillier-1024 keypair...");
    let paillier = Paillier::generate(1024, &mut rng);
    let p_enc = time_avg(50, || {
        std::hint::black_box(paillier.public.encrypt(42, &mut rng));
    });
    let pct = paillier.public.encrypt(42, &mut rng);
    let p_dec = time_avg(50, || {
        std::hint::black_box(paillier.decrypt(&pct));
    });

    // EC-ElGamal over P-256.
    let elgamal = EcElGamal::generate(1 << 16, &mut rng);
    let e_enc = time_avg(50, || {
        std::hint::black_box(elgamal.encrypt(42, &mut rng));
    });
    let ect = elgamal.encrypt(42, &mut rng);
    let e_dec = time_avg(20, || {
        std::hint::black_box(elgamal.decrypt(&ect));
    });

    println!(
        "\n{:<10} {:>14} {:>14} {:>16} {:>16}",
        "", "laptop Enc", "laptop Dec", "IoT Enc (model)", "IoT Dec (model)"
    );
    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>16}",
        "TimeCrypt",
        format_duration(t_enc),
        format_duration(t_dec),
        format_duration(scaled(t_enc, IOT_RATIO_TIMECRYPT)),
        format_duration(scaled(t_dec, IOT_RATIO_TIMECRYPT)),
    );
    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>16}",
        "Paillier",
        format_duration(p_enc),
        format_duration(p_dec),
        format_duration(scaled(p_enc, IOT_RATIO_PAILLIER_ENC)),
        format_duration(scaled(p_dec, IOT_RATIO_PAILLIER_DEC)),
    );
    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>16}",
        "EC-ElGamal",
        format_duration(e_enc),
        format_duration(e_dec),
        format_duration(scaled(e_enc, IOT_RATIO_ELGAMAL_ENC)),
        "N/A (paper)",
    );

    println!("\nPaper shape check: TimeCrypt enc/dec in single-digit µs on laptop");
    println!("(paper: 5.08 µs) and ~ms-class on IoT; Paillier/EC-ElGamal 3–5 orders");
    println!("of magnitude slower on both device classes.");
}
