//! Tiny measurement helpers for the harness binaries (Criterion handles the
//! statistically rigorous micro numbers; these drive the paper-shaped
//! tables).

use std::time::{Duration, Instant};

/// Runs `f` `iters` times and returns the mean duration.
pub fn time_avg<F: FnMut()>(iters: u64, mut f: F) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters.max(1) as u32
}

/// A simple start/stop timer.
pub struct Timer(Instant);

impl Default for Timer {
    fn default() -> Self {
        Self::new()
    }
}

impl Timer {
    /// Starts now.
    pub fn new() -> Self {
        Timer(Instant::now())
    }

    /// Elapsed time.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// Human-friendly duration (ns/µs/ms/s auto-scaled), for table cells.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Human-friendly byte size.
pub fn format_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else if b < 1024 * 1024 * 1024 {
        format!("{:.1}MB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.2}GB", b as f64 / (1024.0 * 1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5ns");
        assert_eq!(format_duration(Duration::from_micros(16)), "16.00µs");
        assert_eq!(format_duration(Duration::from_millis(42)), "42.00ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(format_bytes(10), "10B");
        assert_eq!(format_bytes(8 * 1024 * 1024), "8.0MB");
    }

    #[test]
    fn time_avg_counts() {
        let mut n = 0u64;
        let _ = time_avg(10, || n += 1);
        assert_eq!(n, 10);
    }
}
