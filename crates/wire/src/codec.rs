//! Primitive byte-level encode/decode helpers.

/// Wire decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the value.
    Truncated,
    /// A length prefix exceeded sanity bounds.
    TooLarge(usize),
    /// Unknown enum tag.
    BadTag(u8),
    /// Trailing garbage after a complete message.
    TrailingBytes(usize),
    /// Invalid UTF-8 in a string field.
    BadString,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::TooLarge(n) => write!(f, "length {n} exceeds limit"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            WireError::BadString => write!(f, "invalid utf-8 string"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum element count for any repeated field (DoS guard).
pub const MAX_REPEATED: usize = 1 << 24;

/// Append-only message writer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer appending to an existing buffer — the reuse path: callers
    /// that encode many messages (one frame per request on a connection)
    /// pass the same vector back in and keep its capacity.
    pub fn with_vec(buf: Vec<u8>) -> Self {
        ByteWriter { buf }
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian i64.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian u128.
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Writes a length-prefixed u64 vector.
    pub fn u64_vec(&mut self, v: &[u64]) -> &mut Self {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
        self
    }
}

/// Cursor-based message reader.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails if anything remains (strict message parsing).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Like [`take`](Self::take) but yields a fixed-size array, so the
    /// integer readers below need no fallible slice-to-array conversion.
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_arr()?))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take_arr()?))
    }

    /// Reads a little-endian u128.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take_arr()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        Ok(self.bytes_borrowed()?.to_vec())
    }

    /// Reads a length-prefixed byte string as a borrow of the input buffer
    /// (no copy) — the zero-copy decode path for large payload fields.
    pub fn bytes_borrowed(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::BadString)
    }

    /// Reads a length-prefixed u64 vector.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_REPEATED || n * 8 > self.remaining() {
            return Err(WireError::Truncated);
        }
        (0..n).map(|_| self.u64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(7)
            .u32(1234)
            .u64(u64::MAX)
            .i64(-5)
            .u128(1 << 100)
            .bytes(b"blob")
            .string("héllo");
        w.u64_vec(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 1234);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -5);
        assert_eq!(r.u128().unwrap(), 1 << 100);
        assert_eq!(r.bytes().unwrap(), b"blob");
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected_everywhere() {
        let mut w = ByteWriter::new();
        w.u64(1).bytes(b"abc");
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            let ok = r.u64().and_then(|_| r.bytes());
            assert!(ok.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = ByteWriter::new();
        w.u8(1).u8(2);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // A bytes field claiming 4 GB must not allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.bytes(), Err(WireError::Truncated));
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u64_vec(), Err(WireError::Truncated));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.string(), Err(WireError::BadString));
    }
}
