//! Blocking TCP transport: thread-per-connection server + pipelined client.
//!
//! The request/response discipline is strict one-in-one-out per connection;
//! clients that want parallelism open multiple connections (exactly how the
//! paper's load generator drives 100 client threads).

use crate::frame::{read_frame, write_frame, FrameError};
use crate::messages::{Request, Response};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A request handler: maps each decoded request to a response. Shared across
/// connection threads.
pub trait Handler: Send + Sync + 'static {
    /// Handles one request.
    fn handle(&self, req: Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: Request) -> Response {
        self(req)
    }
}

/// A running TCP server. Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop; in-flight connections drain on their own threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, dispatching to `handler`.
    pub fn bind<A: ToSocketAddrs>(addr: A, handler: Arc<dyn Handler>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        // A short accept timeout lets the loop observe the stop flag.
        listener.set_nonblocking(true)?;
        let accept_thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let handler = handler.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, handler);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (for ephemeral-port tests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: TcpStream, handler: Arc<dyn Handler>) -> Result<(), FrameError> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let body = match read_frame(&mut reader) {
            Ok(b) => b,
            Err(FrameError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        let resp = match Request::decode(&body) {
            Ok(req) => handler.handle(req),
            Err(e) => Response::Error(format!("bad request: {e}")),
        };
        write_frame(&mut writer, &resp.encode())?;
    }
}

/// Transport-level client errors.
#[derive(Debug)]
pub enum ClientError {
    /// Connection / framing failure.
    Frame(FrameError),
    /// The server answered with `Response::Error`.
    Server(String),
    /// The server answered with an unexpected response variant.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response, wanted {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A blocking client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client { reader, writer })
    }

    /// Sends one request and waits for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        let body = read_frame(&mut self.reader)?;
        let resp = Response::decode(&body).map_err(FrameError::Wire)?;
        if let Response::Error(msg) = resp {
            return Err(ClientError::Server(msg));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::StatReply;

    fn echo_server() -> Server {
        Server::bind(
            "127.0.0.1:0",
            Arc::new(|req: Request| match req {
                Request::Ping => Response::Pong,
                Request::Insert { chunk } => Response::Chunks(vec![chunk]),
                Request::GetStatRange { streams, .. } => Response::Stat(StatReply {
                    parts: streams.iter().map(|&s| (s, 0, 1)).collect(),
                    agg: vec![42],
                }),
                _ => Response::Error("unhandled".into()),
            }),
        )
        .unwrap()
    }

    #[test]
    fn ping_pong() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    }

    #[test]
    fn sequential_requests_on_one_connection() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        for i in 0..50u8 {
            let resp = client.call(&Request::Insert { chunk: vec![i] }).unwrap();
            assert_eq!(resp, Response::Chunks(vec![vec![i]]));
        }
    }

    #[test]
    fn server_error_surfaces_as_client_error() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        match client.call(&Request::DeleteStream { stream: 1 }) {
            Err(ClientError::Server(msg)) => assert_eq!(msg, "unhandled"),
            other => panic!("expected server error, got {other:?}"),
        }
    }

    #[test]
    fn many_concurrent_clients() {
        let server = echo_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for _ in 0..100 {
                        assert_eq!(c.call(&Request::Ping).unwrap(), Response::Pong);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn large_payload_roundtrip() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        let big = vec![0xabu8; 1 << 20];
        let resp = client
            .call(&Request::Insert { chunk: big.clone() })
            .unwrap();
        assert_eq!(resp, Response::Chunks(vec![big]));
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        // Give the OS a moment; connects may succeed (backlog) but calls
        // must eventually fail, or the connect itself errors.
        std::thread::sleep(std::time::Duration::from_millis(20));
        match Client::connect(addr) {
            Err(_) => {}
            Ok(mut c) => {
                let _ = c.call(&Request::Ping); // must not hang forever
            }
        }
    }
}
