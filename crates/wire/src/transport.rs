//! Blocking TCP transport: thread-per-connection server + pipelined client.
//!
//! The request/response discipline per connection is strict FIFO: the
//! server answers requests in arrival order, so a client may either run
//! one-in-one-out ([`Client::call`]) or *pipeline* — issue several
//! [`Client::send`]s before draining the matching [`Client::recv`]s. The
//! sharded service tier's `RemoteShard` uses pipelining to pack a whole
//! scatter-gather leg into one connection; clients that want true
//! parallelism open multiple connections (exactly how the paper's load
//! generator drives 100 client threads — see [`crate::pool::ClientPool`]).
//!
//! ```rust
//! use std::sync::Arc;
//! use timecrypt_wire::messages::{Request, Response};
//! use timecrypt_wire::transport::{Client, Server};
//!
//! // Any `Fn(Request) -> Response` is a handler; real deployments pass an
//! // `Arc<TimeCryptServer>` or `Arc<ShardedService>` here.
//! let server = Server::bind(
//!     "127.0.0.1:0", // port 0: ephemeral
//!     Arc::new(|req: Request| match req {
//!         Request::Ping => Response::Pong,
//!         _ => Response::Error("unhandled".into()),
//!     }),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
//!
//! // Pipelined: both requests are in flight before the first reply is read.
//! client.send(&Request::Ping).unwrap();
//! client.send(&Request::Ping).unwrap();
//! assert_eq!(client.recv().unwrap(), Response::Pong);
//! assert_eq!(client.recv().unwrap(), Response::Pong);
//! ```

use crate::frame::{read_frame, write_frame, FrameError};
use crate::messages::{split_trace, Request, Response};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;
use timecrypt_obs::{tc_warn, trace, TraceContext};

/// Retained capacity cap for per-connection scratch buffers. Reuse keeps
/// steady-state serving allocation-free, but one oversized frame (a 4 MiB
/// rebuild page, a large batch) must not pin multi-MiB buffers on every
/// long-lived connection forever — after such a frame the buffer shrinks
/// back to this bound.
const SCRATCH_RETAIN_BYTES: usize = 256 * 1024;

/// Shrinks a scratch buffer that ballooned past the retain bound.
fn bound_scratch(buf: &mut Vec<u8>) {
    if buf.capacity() > SCRATCH_RETAIN_BYTES {
        buf.truncate(0);
        buf.shrink_to(SCRATCH_RETAIN_BYTES);
    }
}

/// A request handler: maps each decoded request to a response. Shared across
/// connection threads.
pub trait Handler: Send + Sync + 'static {
    /// Handles one request.
    fn handle(&self, req: Request) -> Response;

    /// Handles one raw frame body. The default decodes owned and delegates
    /// to [`handle`](Self::handle); handlers with a zero-copy ingest path
    /// (the server engine, shard nodes) override this to parse bulk
    /// payloads as borrows of the frame buffer — replies must stay
    /// byte-identical to the default path.
    // lint: deny(alloc)
    fn handle_frame(&self, body: &[u8]) -> Response {
        match Request::decode(body) {
            Ok(req) => self.handle(req),
            // lint: allow(no-alloc) — malformed-frame rejection path
            Err(e) => Response::Error(format!("bad request: {e}")),
        }
    }
}

impl<F> Handler for F
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: Request) -> Response {
        self(req)
    }
}

/// A running TCP server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop *and severs established connections*, so a
/// dropped server really is gone — which is what lets tests (and the
/// replication failover path) treat shutdown as a node crash.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<std::sync::Mutex<Vec<std::sync::Weak<TcpStream>>>>,
}

/// Server-side connection policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeOptions {
    /// Close a connection that has not delivered a complete frame for
    /// this long. Protects a node from leaked half-open connections
    /// pinning threads forever; pooled clients redial transparently.
    /// `None` (the default) keeps the historical wait-forever behaviour.
    pub idle_timeout: Option<Duration>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, dispatching to `handler`.
    pub fn bind<A: ToSocketAddrs>(addr: A, handler: Arc<dyn Handler>) -> io::Result<Server> {
        Self::bind_with(addr, handler, ServeOptions::default())
    }

    /// [`bind`](Self::bind) with explicit connection policy.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        handler: Arc<dyn Handler>,
        opts: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let conns: Arc<std::sync::Mutex<Vec<std::sync::Weak<TcpStream>>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let conns2 = conns.clone();
        // A short accept timeout lets the loop observe the stop flag.
        listener.set_nonblocking(true)?;
        let accept_thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let handler = handler.clone();
                        let stream = Arc::new(stream);
                        {
                            // Registry mutations keep the vec valid at
                            // every panic point — recover from poisoning.
                            let mut conns = conns2
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            // Drop registry entries whose connection ended.
                            conns.retain(|w| w.strong_count() > 0);
                            conns.push(Arc::downgrade(&stream));
                        }
                        std::thread::spawn(move || {
                            let _ = serve_connection(&stream, handler, opts);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (for ephemeral-port tests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and severs established ones (their
    /// threads observe the closed socket and exit).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
        {
            if let Some(stream) = conn.upgrade() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The slow-request threshold: requests whose server-side handling takes
/// at least this long are logged at `Warn` with their per-stage
/// breakdown. Configured by the `TC_SLOW_MS` environment variable
/// (milliseconds; `0` disables the slow log *and* per-request stage
/// accounting); defaults to 1000 ms.
fn slow_threshold() -> Option<Duration> {
    static THRESHOLD: OnceLock<Option<Duration>> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        let ms = std::env::var("TC_SLOW_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1000);
        (ms > 0).then(|| Duration::from_millis(ms))
    })
}

/// Renders a stage breakdown for the slow-request log.
fn render_stages(stages: &[trace::StageTotal]) -> String {
    let mut out = String::new();
    for t in stages {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&format!("{}={}us/{}", t.stage, t.total_us, t.count));
    }
    out
}

/// Handles one decoded frame: peels the optional trace envelope (so the
/// handler sees exactly the pre-envelope bytes), stamps the context into
/// the thread-local for the handler's spans, and accounts stage timings
/// for the slow-request log. Shared by the TCP server loop; exposed so
/// alternative transports (in-process loopback, tests) serve traced
/// frames identically.
pub fn handle_frame_traced(handler: &dyn Handler, body: &[u8]) -> Response {
    let (ctx, inner) = match split_trace(body) {
        Ok(split) => split,
        Err(e) => return Response::Error(format!("bad request: {e}")),
    };
    let _trace_guard = ctx.map(|c| trace::set_current(Some(c)));
    let scope = slow_threshold().map(|_| trace::begin_request());
    let resp = {
        // One span event per served request when traced: this is the
        // node-side record a scatter-gather leg leaves in the flight
        // recorder under the coordinator's trace id.
        let _serve_span = ctx.is_some().then(|| trace::span("wire", "serve"));
        handler.handle_frame(inner)
    };
    if let (Some(scope), Some(limit)) = (scope, slow_threshold()) {
        let (total, stages) = scope.finish();
        if total >= limit {
            tc_warn!(
                "wire",
                "slow request total_ms={} {}",
                total.as_millis(),
                render_stages(&stages)
            );
        }
    }
    resp
}

fn serve_connection(
    stream: &TcpStream,
    handler: Arc<dyn Handler>,
    opts: ServeOptions,
) -> Result<(), FrameError> {
    stream.set_nodelay(true).ok();
    if let Some(idle) = opts.idle_timeout {
        stream
            .set_read_timeout(Some(idle.max(Duration::from_millis(1))))
            .ok();
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    // Per-connection reply scratch: every response on this connection is
    // encoded into the same buffer, so steady-state serving allocates only
    // what the messages themselves own.
    let mut out = Vec::new();
    loop {
        let body = match read_frame(&mut reader) {
            Ok(b) => b,
            Err(FrameError::Closed) => return Ok(()),
            Err(e) if e.is_timeout() => {
                // Idle (or mid-frame stalled) past the deadline: close.
                // The client side redials; a stalled sender was never
                // going to complete this frame anyway.
                timecrypt_obs::counters::timeout_recorded();
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let resp = handle_frame_traced(&*handler, &body);
        out.clear();
        resp.encode_into(&mut out);
        write_frame(&mut writer, &out)?;
        bound_scratch(&mut out);
    }
}

/// Transport-level client errors.
#[derive(Debug)]
pub enum ClientError {
    /// Connection / framing failure.
    Frame(FrameError),
    /// The server answered with `Response::Error`.
    Server(String),
    /// The server answered with an unexpected response variant.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response, wanted {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A blocking client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Per-connection request scratch: every frame sent on this connection
    /// is encoded into the same buffer (capacity persists across sends).
    scratch: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client {
            reader,
            writer,
            scratch: Vec::new(),
        })
    }

    /// Connects with a per-operation I/O deadline already armed
    /// (see [`set_io_timeout`](Self::set_io_timeout)).
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        io_timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let mut client = Self::connect(addr)?;
        client.set_io_timeout(io_timeout)?;
        Ok(client)
    }

    /// Arms (`Some`) or disarms (`None`) the socket read/write deadline
    /// for subsequent sends and receives. An expired deadline surfaces as
    /// a [`ClientError::Frame`] whose inner error answers true to
    /// [`FrameError::is_timeout`]; the connection is then mid-stream and
    /// must be discarded, not reused. Zero is clamped to 1 ms because the
    /// OS interprets a zero timeout as "block forever".
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        let t = timeout.map(|d| d.max(Duration::from_millis(1)));
        // `reader` and `writer` hold dup'd fds of one socket; SO_RCVTIMEO /
        // SO_SNDTIMEO live on the shared file description, so arming via
        // either handle covers both directions of the connection.
        let sock = self.writer.get_ref();
        sock.set_read_timeout(t)?;
        sock.set_write_timeout(t)?;
        Ok(())
    }

    /// Sends one request and waits for its response. An app-level
    /// [`Response::Error`] is surfaced as [`ClientError::Server`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        match self.recv()? {
            Response::Error(msg) => Err(ClientError::Server(msg)),
            resp => Ok(resp),
        }
    }

    /// Sends one request without waiting for its response (pipelining).
    /// The server answers in FIFO order, so after `n` sends exactly `n`
    /// [`recv`](Self::recv)s drain the matching responses.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.send_with(|body| req.encode_into(body))
    }

    /// Like [`send`](Self::send), but wraps the request in a
    /// trace-context envelope when `ctx` is present. With `ctx == None`
    /// the frame is byte-identical to [`send`](Self::send) — the
    /// tracing-off path costs nothing on the wire.
    pub fn send_traced(
        &mut self,
        ctx: Option<TraceContext>,
        req: &Request,
    ) -> Result<(), ClientError> {
        self.send_with(|body| {
            if let Some(c) = ctx {
                crate::messages::encode_trace_prefix(c, body);
            }
            req.encode_into(body)
        })
    }

    /// Like [`send`](Self::send), but the caller writes the request body
    /// directly into the connection's scratch buffer — the zero-copy frame
    /// assembly path for bodies built from parts (e.g. a
    /// [`BatchEncoder`](crate::messages::BatchEncoder) over serialized
    /// chunks). `fill` must append exactly one valid encoded request.
    // lint: deny(alloc)
    pub fn send_with(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> Result<(), ClientError> {
        let mut body = std::mem::take(&mut self.scratch);
        body.clear();
        fill(&mut body);
        let result = write_frame(&mut self.writer, &body);
        bound_scratch(&mut body);
        self.scratch = body;
        if let Err(e) = &result {
            if e.is_timeout() {
                timecrypt_obs::counters::timeout_recorded();
            }
        }
        Ok(result?)
    }

    /// Receives the next response of a pipelined exchange. Unlike
    /// [`call`](Self::call), an app-level [`Response::Error`] is returned
    /// as a *value* — a pipelined caller must keep draining the remaining
    /// responses even when one request failed.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let body = read_frame(&mut self.reader).inspect_err(|e| {
            if e.is_timeout() {
                timecrypt_obs::counters::timeout_recorded();
            }
        })?;
        Ok(Response::decode(&body).map_err(FrameError::Wire)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::StatReply;

    fn echo_server() -> Server {
        Server::bind(
            "127.0.0.1:0",
            Arc::new(|req: Request| match req {
                Request::Ping => Response::Pong,
                Request::Insert { chunk } => Response::Chunks(vec![chunk]),
                Request::GetStatRange { streams, .. } => Response::Stat(StatReply {
                    parts: streams.iter().map(|&s| (s, 0, 1)).collect(),
                    agg: vec![42],
                }),
                _ => Response::Error("unhandled".into()),
            }),
        )
        .unwrap()
    }

    #[test]
    fn ping_pong() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    }

    #[test]
    fn sequential_requests_on_one_connection() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        for i in 0..50u8 {
            let resp = client.call(&Request::Insert { chunk: vec![i] }).unwrap();
            assert_eq!(resp, Response::Chunks(vec![vec![i]]));
        }
    }

    #[test]
    fn server_error_surfaces_as_client_error() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        match client.call(&Request::DeleteStream { stream: 1 }) {
            Err(ClientError::Server(msg)) => assert_eq!(msg, "unhandled"),
            other => panic!("expected server error, got {other:?}"),
        }
    }

    #[test]
    fn many_concurrent_clients() {
        let server = echo_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for _ in 0..100 {
                        assert_eq!(c.call(&Request::Ping).unwrap(), Response::Pong);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn pipelined_responses_arrive_in_request_order() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        for i in 0..32u8 {
            client.send(&Request::Insert { chunk: vec![i] }).unwrap();
        }
        // An app-level error in the middle must not break the pipeline.
        client.send(&Request::DeleteStream { stream: 1 }).unwrap();
        client.send(&Request::Ping).unwrap();
        for i in 0..32u8 {
            assert_eq!(client.recv().unwrap(), Response::Chunks(vec![vec![i]]));
        }
        assert_eq!(client.recv().unwrap(), Response::Error("unhandled".into()));
        assert_eq!(client.recv().unwrap(), Response::Pong);
    }

    #[test]
    fn large_payload_roundtrip() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        let big = vec![0xabu8; 1 << 20];
        let resp = client
            .call(&Request::Insert { chunk: big.clone() })
            .unwrap();
        assert_eq!(resp, Response::Chunks(vec![big]));
    }

    /// A listener that accepts connections and reads nothing — from the
    /// client's perspective the peer is alive but permanently silent.
    fn silent_server() -> (std::net::TcpListener, SocketAddr) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        (listener, addr)
    }

    #[test]
    fn recv_times_out_against_silent_peer() {
        let (listener, addr) = silent_server();
        let hold = std::thread::spawn(move || listener.accept());
        let mut client = Client::connect_with(addr, Some(Duration::from_millis(30))).unwrap();
        client.send(&Request::Ping).unwrap();
        let start = std::time::Instant::now();
        match client.recv() {
            Err(ClientError::Frame(e)) => assert!(e.is_timeout(), "got {e:?}"),
            other => panic!("expected timeout, got {other:?}"),
        }
        // SO_RCVTIMEO must fire near the deadline, not hang.
        assert!(start.elapsed() < Duration::from_secs(5));
        drop(hold);
    }

    #[test]
    fn zero_timeout_is_clamped_not_rejected() {
        let server = echo_server();
        let mut client = Client::connect(server.addr()).unwrap();
        // Duration::ZERO means "no timeout" to the OS and is an error to
        // pass through; the clamp turns it into the shortest real deadline.
        client.set_io_timeout(Some(Duration::ZERO)).unwrap();
        client.set_io_timeout(None).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    }

    #[test]
    fn server_idle_timeout_closes_connection() {
        let server = Server::bind_with(
            "127.0.0.1:0",
            Arc::new(|_req: Request| Response::Pong),
            ServeOptions {
                idle_timeout: Some(Duration::from_millis(40)),
            },
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        // Go idle past the server's deadline; the node reaps the
        // connection and the next exchange fails instead of pinning a
        // server thread forever.
        std::thread::sleep(Duration::from_millis(120));
        let res = client.call(&Request::Ping);
        assert!(res.is_err(), "expected reaped connection, got {res:?}");
        // A fresh dial works: only the idle connection was reaped.
        let mut c2 = Client::connect(server.addr()).unwrap();
        assert_eq!(c2.call(&Request::Ping).unwrap(), Response::Pong);
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        // Give the OS a moment; connects may succeed (backlog) but calls
        // must eventually fail, or the connect itself errors.
        std::thread::sleep(std::time::Duration::from_millis(20));
        match Client::connect(addr) {
            Err(_) => {}
            Ok(mut c) => {
                let _ = c.call(&Request::Ping); // must not hang forever
            }
        }
    }
}
