//! Length-prefixed framing over any `Read`/`Write` pair.

use crate::codec::WireError;
use std::io::{self, Read, Write};

/// Hard upper bound on a single frame (16 MiB): bounds allocation driven by
/// untrusted length prefixes and comfortably fits the largest chunk batches.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Errors while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Socket/file error.
    Io(io::Error),
    /// Peer closed the connection cleanly between frames.
    Closed,
    /// Frame exceeded [`MAX_FRAME`].
    TooLarge(usize),
    /// Message body failed to parse.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::Wire(e) => write!(f, "frame body error: {e}"),
        }
    }
}

impl FrameError {
    /// True when this error is a socket deadline expiry (`SO_RCVTIMEO` /
    /// `SO_SNDTIMEO` fired), as opposed to a dead or misbehaving peer.
    /// Timeouts are the signal the failover machinery treats as "peer
    /// unavailable": a hung-but-alive node must look like a dead one.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Writes one frame: `u32 le length || body`.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), FrameError> {
    if body.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(body.len()));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Returns [`FrameError::Closed`] on clean EOF before the
/// length prefix.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean close (0 bytes) from a torn prefix.
    let mut got = 0usize;
    while got < 4 {
        let n = r.read(&mut len_buf[got..])?;
        if n == 0 {
            return if got == 0 {
                Err(FrameError::Closed)
            } else {
                Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into()))
            };
        }
        got += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[9u8; 1000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"first");
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap(), vec![9u8; 1000]);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_frame_rejected_on_write() {
        let mut buf = Vec::new();
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(
            write_frame(&mut buf, &huge),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn oversized_prefix_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn torn_prefix_is_io_error_not_closed() {
        let mut cur = Cursor::new(vec![1u8, 0]); // 2 of 4 length bytes
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }

    #[test]
    fn torn_body_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }
}
