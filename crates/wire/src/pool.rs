//! A blocking client-connection pool with reconnect-and-backoff.
//!
//! One [`ClientPool`] fronts one remote endpoint (in the sharded service
//! tier: one shard node). Callers check a connection out, drive it with
//! [`Client::call`] or the pipelined [`Client::send`]/[`Client::recv`]
//! pair, and return it on drop; a connection that saw a transport error is
//! discarded instead of returned, so one broken socket never poisons later
//! calls. When no pooled connection is available the pool dials the
//! endpoint, retrying with exponential backoff up to
//! [`PoolConfig::connect_attempts`] before reporting the endpoint down.
//!
//! The pool deliberately does **not** retry requests: whether a failed
//! exchange is safe to repeat depends on the request (statistical queries
//! are idempotent, inserts are not — see
//! [`Request::is_mutation`](crate::messages::Request::is_mutation)), so
//! retry policy belongs to the caller.

use crate::messages::Request;
use crate::transport::{Client, ClientError};
use std::sync::Mutex;
use std::time::Duration;

/// Tuning knobs for a [`ClientPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum idle connections retained (checked-out connections are
    /// unbounded — concurrency is governed by the caller's thread count).
    pub max_idle: usize,
    /// Dial attempts per checkout before the endpoint counts as down.
    pub connect_attempts: u32,
    /// Backoff before the second dial attempt; doubles per attempt.
    pub backoff: Duration,
    /// Per-operation socket deadline armed on every checked-out
    /// connection. A send or receive that stalls this long fails with a
    /// timeout ([`FrameError::is_timeout`](crate::frame::FrameError::is_timeout))
    /// instead of hanging the calling thread; the connection is then
    /// discarded. `None` waits forever (the pre-deadline behaviour).
    pub io_timeout: Option<Duration>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_idle: 4,
            connect_attempts: 4,
            backoff: Duration::from_millis(2),
            io_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// A pool of blocking [`Client`] connections to one endpoint.
pub struct ClientPool {
    addr: String,
    cfg: PoolConfig,
    idle: Mutex<Vec<Client>>,
}

impl ClientPool {
    /// A pool dialing `addr` (`host:port`).
    pub fn new(addr: impl Into<String>, cfg: PoolConfig) -> Self {
        ClientPool {
            addr: addr.into(),
            cfg,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The endpoint this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Dials the endpoint, backing off exponentially between attempts.
    fn connect(&self) -> Result<Client, ClientError> {
        let mut backoff = self.cfg.backoff;
        let mut last_err = match Client::connect_with(&self.addr, self.cfg.io_timeout) {
            Ok(c) => return Ok(c),
            Err(e) => e,
        };
        for _ in 1..self.cfg.connect_attempts.max(1) {
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
            match Client::connect_with(&self.addr, self.cfg.io_timeout) {
                Ok(c) => return Ok(c),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Checks a connection out: a pooled one if available, else a fresh
    /// dial (with backoff). The returned guard gives `&mut Client` access
    /// and returns the connection to the pool on drop unless
    /// [`PooledConn::discard`] was called.
    pub fn get(&self) -> Result<PooledConn<'_>, ClientError> {
        // A poisoning panic can only leave the idle vec mid-push/pop,
        // both of which keep it valid — recover rather than propagate.
        let pooled = self
            .idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        let mut client = match pooled {
            Some(c) => c,
            None => self.connect()?,
        };
        // Re-arm the configured deadline on every checkout. A caller may
        // have tightened this connection's deadline to its remaining
        // budget before returning it; the next request must start from
        // the full per-operation allowance, not inherit that stale,
        // nearly-expired remainder.
        if client.set_io_timeout(self.cfg.io_timeout).is_err() {
            client = self.connect()?;
        }
        Ok(PooledConn {
            pool: self,
            client: Some(client),
        })
    }

    /// Dials a brand-new connection (with backoff), discarding every idle
    /// pooled connection first. Use after a transport failure: if the
    /// peer restarted, *all* pooled connections to it are stale.
    pub fn fresh(&self) -> Result<PooledConn<'_>, ClientError> {
        self.idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        Ok(PooledConn {
            pool: self,
            client: Some(self.connect()?),
        })
    }

    /// One request/response exchange on a pooled connection. Pooled
    /// connections commonly go stale when the peer restarts, so a
    /// transport failure is retried once on a freshly dialed connection —
    /// but only for non-mutating requests, where a peer that secretly
    /// processed the lost exchange changes nothing.
    pub fn call(&self, req: &Request) -> Result<crate::messages::Response, ClientError> {
        self.call_traced(None, req)
    }

    /// [`call`](Self::call) with an optional trace-context envelope on
    /// the request (`None` is byte-identical to `call`). The retry on a
    /// stale connection re-sends with the same context.
    pub fn call_traced(
        &self,
        ctx: Option<timecrypt_obs::TraceContext>,
        req: &Request,
    ) -> Result<crate::messages::Response, ClientError> {
        let exchange = |client: &mut Client| -> Result<crate::messages::Response, ClientError> {
            client.send_traced(ctx, req)?;
            match client.recv()? {
                crate::messages::Response::Error(msg) => Err(ClientError::Server(msg)),
                resp => Ok(resp),
            }
        };
        let mut conn = self.get()?;
        match exchange(conn.client()) {
            Err(ClientError::Frame(_)) if !req.is_mutation() => {
                conn.discard();
                let mut fresh = self.fresh()?;
                let out = exchange(fresh.client());
                if out.is_err() {
                    fresh.discard();
                }
                out
            }
            Err(e) => {
                // Mutation or app error: app errors leave the connection
                // healthy; transport errors poison it.
                if matches!(e, ClientError::Frame(_)) {
                    conn.discard();
                }
                Err(e)
            }
            Ok(resp) => Ok(resp),
        }
    }

    /// One exchange whose request body is written by `fill` directly into
    /// the connection's scratch buffer ([`Client::send_with`]) — the
    /// zero-copy path for bodies assembled from parts, e.g. a
    /// [`BatchEncoder`](crate::messages::BatchEncoder) over serialized
    /// chunks. No stale-connection retry is attempted: the primary user is
    /// batched ingest, a mutation (see the module docs on retry policy).
    /// An app-level `Response::Error` surfaces as [`ClientError::Server`],
    /// matching [`call`](Self::call).
    // lint: deny(alloc)
    pub fn call_with(
        &self,
        fill: impl FnOnce(&mut Vec<u8>),
    ) -> Result<crate::messages::Response, ClientError> {
        let mut conn = self.get()?;
        let client = conn.client();
        let result = client.send_with(fill).and_then(|()| client.recv());
        match result {
            Ok(crate::messages::Response::Error(msg)) => Err(ClientError::Server(msg)),
            Ok(resp) => Ok(resp),
            Err(e) => {
                if matches!(e, ClientError::Frame(_)) {
                    conn.discard();
                }
                Err(e)
            }
        }
    }

    fn put_back(&self, client: Client) {
        let mut idle = self
            .idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if idle.len() < self.cfg.max_idle {
            idle.push(client);
        }
    }
}

/// A checked-out pool connection; returns to the pool on drop.
pub struct PooledConn<'a> {
    pool: &'a ClientPool,
    client: Option<Client>,
}

impl PooledConn<'_> {
    /// The underlying connection.
    pub fn client(&mut self) -> &mut Client {
        // lint: allow(panic-freedom) — `client` is `Some` from construction until drop; `discard` consumes the guard, so no caller can observe `None`
        self.client.as_mut().expect("connection present until drop")
    }

    /// Drops the connection instead of returning it to the pool (call
    /// after any transport-level failure). Consumes the guard: a
    /// discarded connection cannot be touched again.
    pub fn discard(mut self) {
        self.client = None;
    }
}

impl Drop for PooledConn<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.client.take() {
            self.pool.put_back(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Request, Response};
    use crate::transport::Server;
    use std::sync::Arc;

    fn ping_server() -> Server {
        Server::bind(
            "127.0.0.1:0",
            Arc::new(|req: Request| match req {
                Request::Ping => Response::Pong,
                Request::Insert { chunk } => Response::Chunks(vec![chunk]),
                _ => Response::Error("unhandled".into()),
            }),
        )
        .unwrap()
    }

    #[test]
    fn connections_are_reused() {
        let server = ping_server();
        let pool = ClientPool::new(server.addr().to_string(), PoolConfig::default());
        for _ in 0..10 {
            assert_eq!(pool.call(&Request::Ping).unwrap(), Response::Pong);
        }
        assert_eq!(
            pool.idle.lock().unwrap().len(),
            1,
            "sequential calls share one pooled connection"
        );
    }

    #[test]
    fn idle_cap_is_enforced() {
        let server = ping_server();
        let pool = ClientPool::new(
            server.addr().to_string(),
            PoolConfig {
                max_idle: 2,
                ..PoolConfig::default()
            },
        );
        // Four concurrently checked-out connections...
        let conns: Vec<_> = (0..4).map(|_| pool.get().unwrap()).collect();
        drop(conns);
        // ...but only two retained.
        assert_eq!(pool.idle.lock().unwrap().len(), 2);
    }

    /// A connection whose peer is already gone: it dialed a listener that
    /// was dropped before accepting, so the first exchange on it fails.
    fn dead_client() -> Client {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let client = Client::connect(listener.local_addr().unwrap()).unwrap();
        drop(listener);
        client
    }

    #[test]
    fn stale_pooled_connection_recovers_for_reads() {
        // A pooled connection went stale (peer restarted under it): the
        // exchange fails, and for a non-mutating request the pool retries
        // once on a freshly dialed connection to the healthy endpoint.
        let server = ping_server();
        let pool = ClientPool::new(server.addr().to_string(), PoolConfig::default());
        pool.idle.lock().unwrap().push(dead_client());
        assert_eq!(pool.call(&Request::Ping).unwrap(), Response::Pong);
    }

    #[test]
    fn down_endpoint_reports_transport_error() {
        let server = ping_server();
        let addr = server.addr();
        drop(server);
        let pool = ClientPool::new(
            addr.to_string(),
            PoolConfig {
                connect_attempts: 2,
                backoff: Duration::from_millis(1),
                ..PoolConfig::default()
            },
        );
        match pool.call(&Request::Ping) {
            Err(ClientError::Frame(_)) => {}
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    /// A server whose handler stalls `delay` before every reply.
    fn slow_server(delay: Duration) -> Server {
        Server::bind(
            "127.0.0.1:0",
            Arc::new(move |req: Request| {
                std::thread::sleep(delay);
                match req {
                    Request::Ping => Response::Pong,
                    _ => Response::Error("unhandled".into()),
                }
            }),
        )
        .unwrap()
    }

    #[test]
    fn io_timeout_fails_fast_against_hung_peer() {
        let server = slow_server(Duration::from_millis(400));
        let pool = ClientPool::new(
            server.addr().to_string(),
            PoolConfig {
                io_timeout: Some(Duration::from_millis(30)),
                ..PoolConfig::default()
            },
        );
        let start = std::time::Instant::now();
        // Ping is non-mutating, so the pool retries once on a fresh
        // connection — which also times out. Two timeouts, then the error
        // surfaces; well under the 400 ms the handler would make us wait.
        match pool.call(&Request::Ping) {
            Err(ClientError::Frame(e)) => assert!(e.is_timeout(), "got {e:?}"),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_millis(350));
        // Timed-out connections must not be returned to the pool: their
        // reply is still in flight and would answer the wrong request.
        assert_eq!(pool.idle.lock().unwrap().len(), 0);
    }

    #[test]
    fn checkout_rearms_full_deadline_on_pooled_connections() {
        let server = slow_server(Duration::from_millis(60));
        let pool = ClientPool::new(server.addr().to_string(), PoolConfig::default());
        // Simulate a caller that tightened the connection's deadline to
        // its (nearly spent) remaining budget before returning it.
        {
            let mut conn = pool.get().unwrap();
            conn.client()
                .set_io_timeout(Some(Duration::from_millis(1)))
                .unwrap();
        }
        assert_eq!(pool.idle.lock().unwrap().len(), 1);
        // The next checkout must start from the configured 5 s allowance,
        // not the leftover 1 ms — the 60 ms reply then arrives in time.
        assert_eq!(pool.call(&Request::Ping).unwrap(), Response::Pong);
    }

    #[test]
    fn mutations_are_not_retried_on_stale_connections() {
        // Same stale-connection setup, but with a mutation: the failure
        // must surface instead of being silently retried (the lost
        // exchange might have been applied by the peer).
        let server = ping_server();
        let pool = ClientPool::new(server.addr().to_string(), PoolConfig::default());
        pool.idle.lock().unwrap().push(dead_client());
        let req = Request::Insert { chunk: vec![1] };
        assert!(req.is_mutation());
        match pool.call(&req) {
            Err(ClientError::Frame(_)) => {}
            other => panic!("mutation on a dead socket must fail, got {other:?}"),
        }
        // The endpoint itself is healthy: the next call dials fresh.
        assert_eq!(pool.call(&Request::Ping).unwrap(), Response::Pong);
    }
}
