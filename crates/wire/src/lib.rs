//! Wire protocol: framing, message schema, and TCP transport.
//!
//! The paper's prototype exposes the TimeCrypt API over Netty with protobuf
//! messages (§5). This crate is the from-scratch substitute: a length-
//! prefixed binary framing layer ([`frame`]), hand-rolled message codecs
//! ([`codec`], [`messages`]) mirroring the Table 1 API, a blocking
//! thread-per-connection TCP transport ([`transport`]) with request
//! pipelining, and a client-connection pool with reconnect-and-backoff
//! ([`pool`]) — enough for both the multi-client load generator and the
//! sharded service tier's coordinator → node links.
//!
//! Framing: every message is `u32 little-endian length || body`, with a hard
//! frame-size cap to bound allocation from untrusted peers.
//!
//! Tracing: a request may arrive wrapped in an optional trace-context
//! envelope ([`messages::split_trace`]); the server loop peels it off,
//! stamps the context into the thread-local used by `timecrypt-obs`
//! spans, and hands the handler exactly the pre-envelope bytes —
//! untraced traffic is byte-identical to a build without tracing.

pub mod codec;
pub mod frame;
pub mod messages;
pub mod pool;
pub mod transport;

pub use codec::{ByteReader, ByteWriter, WireError};
pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use messages::{
    Request, Response, ServiceStatsWire, ShardStatsWire, StatReply, StreamInfoWire,
};
pub use pool::{ClientPool, PoolConfig};
pub use timecrypt_obs::TraceContext;
pub use transport::{Client, Server};
