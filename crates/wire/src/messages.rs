//! Request/response message schema — the wire form of the Table 1 API.
//!
//! The server never sees plaintext: chunk payloads arrive pre-encrypted,
//! digests arrive as HEAC ciphertexts (plain `u64` words), and key-store
//! blobs (grants, envelopes) are opaque bytes sealed for the principal.

use crate::codec::{ByteReader, ByteWriter, WireError, MAX_REPEATED};
use timecrypt_obs::TraceContext;

/// Server-side per-stream metadata (non-secret: the paper's server knows
/// chunk boundaries because index keys encode temporal ranges, §4.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInfoWire {
    /// Stream id.
    pub stream: u128,
    /// Epoch (ms) of chunk 0.
    pub t0: i64,
    /// Chunk interval Δ in ms.
    pub delta_ms: u64,
    /// Digest vector width (element count).
    pub digest_width: u32,
    /// Chunks ingested so far.
    pub len: u64,
}

impl StreamInfoWire {
    fn encode(&self, w: &mut ByteWriter) {
        w.u128(self.stream);
        w.i64(self.t0);
        w.u64(self.delta_ms);
        w.u32(self.digest_width);
        w.u64(self.len);
    }

    fn decode(r: &mut ByteReader) -> Result<Self, WireError> {
        Ok(StreamInfoWire {
            stream: r.u128()?,
            t0: r.i64()?,
            delta_ms: r.u64()?,
            digest_width: r.u32()?,
            len: r.u64()?,
        })
    }
}

/// A statistical query reply: the combined aggregate plus, per stream, the
/// chunk boundaries the client must derive keys for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatReply {
    /// `(stream, chunk_lo, chunk_hi)` per queried stream: the aggregate
    /// covers chunks `[chunk_lo, chunk_hi)` of each.
    pub parts: Vec<(u128, u64, u64)>,
    /// Element-wise homomorphic sum across all covered chunks of all
    /// streams.
    pub agg: Vec<u64>,
}

/// Client → server requests (Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// (1) Create a stream with server-visible metadata.
    CreateStream {
        /// Stream id.
        stream: u128,
        /// Epoch ms.
        t0: i64,
        /// Chunk interval ms.
        delta_ms: u64,
        /// Digest width.
        digest_width: u32,
    },
    /// (2) Delete a stream and all associated data.
    DeleteStream {
        /// Stream id.
        stream: u128,
    },
    /// (4) Append one sealed chunk (serialized `EncryptedChunk`).
    Insert {
        /// `EncryptedChunk::to_bytes()` payload.
        chunk: Vec<u8>,
    },
    /// (4b) Real-time upload of a single record (§4.6): the server buffers
    /// it until the covering chunk arrives via `Insert`, then drops it.
    InsertLive {
        /// `SealedRecord::to_bytes()` payload.
        record: Vec<u8>,
    },
    /// (5b) Fetch buffered live records overlapping a time interval
    /// (records of chunks not yet finalized).
    GetLive {
        /// Stream id.
        stream: u128,
        /// Interval start (ms, inclusive).
        ts_s: i64,
        /// Interval end (ms, exclusive).
        ts_e: i64,
    },
    /// (5) Retrieve raw (encrypted) chunks for a time interval.
    GetRange {
        /// Stream id.
        stream: u128,
        /// Interval start (ms, inclusive).
        ts_s: i64,
        /// Interval end (ms, exclusive).
        ts_e: i64,
    },
    /// (6) Statistical query over one or more streams.
    GetStatRange {
        /// Streams to aggregate over (inter-stream queries sum across all).
        streams: Vec<u128>,
        /// Interval start (ms).
        ts_s: i64,
        /// Interval end (ms).
        ts_e: i64,
    },
    /// (7) Delete raw chunk payloads in an interval, retaining digests.
    DeleteRange {
        /// Stream id.
        stream: u128,
        /// Interval start (ms).
        ts_s: i64,
        /// Interval end (ms).
        ts_e: i64,
    },
    /// (3) Roll up: age out fine-grained index levels before a time.
    Rollup {
        /// Stream id.
        stream: u128,
        /// Cutoff time (ms): chunks before it decay.
        before_ts: i64,
        /// Index level to keep (coarser levels survive).
        keep_level: u8,
    },
    /// Stream metadata probe.
    StreamInfo {
        /// Stream id.
        stream: u128,
    },
    /// (8)(9) Store an opaque grant blob for a principal (hybrid-encrypted
    /// token set / KR token).
    PutGrant {
        /// Stream id.
        stream: u128,
        /// Principal identity.
        principal: String,
        /// Sealed grant bytes.
        blob: Vec<u8>,
    },
    /// Fetch all grant blobs for a principal on a stream.
    GetGrants {
        /// Stream id.
        stream: u128,
        /// Principal identity.
        principal: String,
    },
    /// (10) Remove a principal's grants (revocation bookkeeping; the
    /// cryptographic cut-off is the owner ceasing token extension).
    RevokeGrants {
        /// Stream id.
        stream: u128,
        /// Principal identity.
        principal: String,
    },
    /// Store resolution envelopes (opaque) for a stream + resolution.
    PutEnvelopes {
        /// Stream id.
        stream: u128,
        /// Resolution in chunks.
        resolution: u64,
        /// `(envelope index, sealed bytes)` pairs.
        envelopes: Vec<(u64, Vec<u8>)>,
    },
    /// Fetch resolution envelopes in an index window.
    GetEnvelopes {
        /// Stream id.
        stream: u128,
        /// Resolution in chunks.
        resolution: u64,
        /// First envelope index (inclusive).
        lo: u64,
        /// Last envelope index (inclusive).
        hi: u64,
    },
    /// Store the data owner's signed root attestation for a stream
    /// (integrity extension, §3.3). Opaque to the server.
    PutAttestation {
        /// Stream id.
        stream: u128,
        /// `RootAttestation::encode()` bytes.
        attestation: Vec<u8>,
    },
    /// Fetch the latest stored attestation for a stream.
    GetAttestation {
        /// Stream id.
        stream: u128,
    },
    /// Raw chunk retrieval with per-chunk authenticated commitments
    /// against the latest attestation (integrity extension).
    GetVerifiedRange {
        /// Stream id.
        stream: u128,
        /// Interval start (ms).
        ts_s: i64,
        /// Interval end (ms).
        ts_e: i64,
    },
    /// Statistical range query with an authenticated-aggregation proof
    /// against the latest attestation (integrity extension).
    GetRangeProof {
        /// Stream id.
        stream: u128,
        /// Interval start (ms).
        ts_s: i64,
        /// Interval end (ms).
        ts_e: i64,
    },
    /// (4c) Append a batch of sealed chunks in one round trip. Chunks of
    /// the same stream must appear in index order; the server (or the
    /// sharded service layer) preserves the batch's per-stream order, so
    /// the out-of-order ingest check behaves exactly as for single inserts.
    InsertBatch {
        /// `EncryptedChunk::to_bytes()` payloads.
        chunks: Vec<Vec<u8>>,
    },
    /// Service-layer metrics probe (shard counters, queue depths, latency
    /// histograms). Single-engine deployments answer with an error.
    Stats,
    /// Metadata of every stream owned by one shard (replica rebuild: the
    /// survivor enumerates what the replacement must copy). A single
    /// engine answers with all of its streams regardless of `shard`.
    ListStreams {
        /// Cluster-wide shard id whose streams to list.
        shard: u32,
    },
    /// Page of a stream's raw encrypted chunks, starting at `from_idx`
    /// (replica rebuild: chunked so every reply stays far under the
    /// 16 MiB frame cap however large the stream is). Answered with
    /// [`Response::StreamChunks`].
    ExportStream {
        /// Stream id.
        stream: u128,
        /// First chunk index of the page.
        from_idx: u64,
    },
    /// Liveness probe.
    Ping,
}

/// Server → client responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success without payload.
    Ok,
    /// Failure with a human-readable reason. The server maps internal
    /// errors to strings; no stack detail crosses the wire.
    Error(String),
    /// Raw encrypted chunks (each `EncryptedChunk::to_bytes()`).
    Chunks(Vec<Vec<u8>>),
    /// Buffered live records (each `SealedRecord::to_bytes()`).
    Records(Vec<Vec<u8>>),
    /// Statistical aggregate.
    Stat(StatReply),
    /// Opaque blobs (grants).
    Blobs(Vec<Vec<u8>>),
    /// Envelopes `(index, bytes)`.
    Envelopes(Vec<(u64, Vec<u8>)>),
    /// Stream metadata.
    Info(StreamInfoWire),
    /// An attested aggregate: the owner-signed attestation plus the
    /// server's range proof against it (integrity extension).
    Attested {
        /// `RootAttestation::encode()` bytes.
        attestation: Vec<u8>,
        /// `RangeProof::encode()` bytes.
        proof: Vec<u8>,
    },
    /// Raw chunks with an open range proof binding each chunk's commitment
    /// to the attested root (integrity extension).
    VerifiedChunks {
        /// `RootAttestation::encode()` bytes.
        attestation: Vec<u8>,
        /// Open `RangeProof::encode()` bytes.
        proof: Vec<u8>,
        /// The chunk bytes, in chunk order, matching the proof's window.
        chunks: Vec<Vec<u8>>,
    },
    /// Per-chunk outcome of an [`Request::InsertBatch`]: `(batch index,
    /// error string)` for each failed chunk, empty when everything landed.
    /// Successes are implicit — the producer only needs to know what to
    /// retry or surface.
    Batch {
        /// `(index into the batch, server error string)` per failure.
        errors: Vec<(u32, String)>,
    },
    /// Service metrics snapshot ([`Request::Stats`]).
    ServiceStats(ServiceStatsWire),
    /// Per-stream metadata of one shard ([`Request::ListStreams`]),
    /// ascending by stream id.
    StreamList(Vec<StreamInfoWire>),
    /// One page of a stream's raw encrypted chunks
    /// ([`Request::ExportStream`]): consecutive
    /// `EncryptedChunk::to_bytes()` payloads starting at the requested
    /// index.
    StreamChunks {
        /// The page's chunk bytes, in index order.
        chunks: Vec<Vec<u8>>,
        /// Index to request the next page from.
        next_idx: u64,
        /// No further chunks are exportable: the page reached the end of
        /// the stream, or the next payload has been deleted
        /// (`DeleteRange` decay) and the exportable prefix ends here.
        done: bool,
    },
    /// Ping reply.
    Pong,
}

/// One shard's counters in a [`Response::ServiceStats`] reply.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardStatsWire {
    /// Shard index.
    pub shard: u32,
    /// Streams owned by this shard.
    pub streams: u64,
    /// Chunks ingested (batched + direct) since service start.
    pub ingested_chunks: u64,
    /// Ingest attempts rejected by the engine (out-of-order, width, ...).
    pub ingest_errors: u64,
    /// Statistical sub-queries served.
    pub queries: u64,
    /// Sub-queries that returned an error.
    pub query_errors: u64,
    /// Jobs currently waiting in the shard's ingest queue.
    pub queue_depth: u64,
    /// Reads served by the backup replica after the primary was
    /// unreachable (always 0 without replication).
    pub failovers: u64,
    /// Backup-replica operations that failed or diverged from the primary
    /// verdict (always 0 without replication). A growing value means the
    /// replicas are drifting apart and the backup needs rebuilding.
    pub replica_errors: u64,
    /// Backups promoted to primary after the primary stayed unreachable
    /// (the shard then runs un-replicated until a replacement is
    /// attached and rebuilt).
    pub promotions: u64,
    /// Replica rebuilds completed: a freshly attached backup copied every
    /// hosted stream from the survivor, verified chunk counts, and
    /// re-armed write mirroring.
    pub rebuilds: u64,
    /// Chunks copied survivor → replacement by rebuild workers.
    pub rebuild_chunks_copied: u64,
    /// True iff a backup replica is attached and in sync (write-mirrored,
    /// eligible for read failover and promotion). False while a
    /// replacement is still rebuilding — and always false without
    /// replication.
    pub in_sync: bool,
    /// Ingest latency histogram: bucket `i` counts operations that took
    /// `[2^(i-1), 2^i)` microseconds (bucket 0 is sub-microsecond).
    pub ingest_hist_us: Vec<u64>,
    /// Query latency histogram, same bucket layout.
    pub query_hist_us: Vec<u64>,
    /// Streams currently hydrated (resident state) on this shard's
    /// engine; bounded by the engine's `max_resident_streams` cap, and at
    /// most `streams`.
    pub resident_streams: u64,
    /// Cold-touch hydrations (store replays of stream state) since open.
    pub hydrations: u64,
    /// Resident streams evicted since open.
    pub evictions: u64,
}

impl ShardStatsWire {
    fn encode(&self, w: &mut ByteWriter) {
        w.u32(self.shard);
        w.u64(self.streams);
        w.u64(self.ingested_chunks);
        w.u64(self.ingest_errors);
        w.u64(self.queries);
        w.u64(self.query_errors);
        w.u64(self.queue_depth);
        w.u64(self.failovers);
        w.u64(self.replica_errors);
        w.u64(self.promotions);
        w.u64(self.rebuilds);
        w.u64(self.rebuild_chunks_copied);
        w.u8(u8::from(self.in_sync));
        w.u64_vec(&self.ingest_hist_us);
        w.u64_vec(&self.query_hist_us);
        w.u64(self.resident_streams);
        w.u64(self.hydrations);
        w.u64(self.evictions);
    }

    fn decode(r: &mut ByteReader) -> Result<Self, WireError> {
        Ok(ShardStatsWire {
            shard: r.u32()?,
            streams: r.u64()?,
            ingested_chunks: r.u64()?,
            ingest_errors: r.u64()?,
            queries: r.u64()?,
            query_errors: r.u64()?,
            queue_depth: r.u64()?,
            failovers: r.u64()?,
            replica_errors: r.u64()?,
            promotions: r.u64()?,
            rebuilds: r.u64()?,
            rebuild_chunks_copied: r.u64()?,
            in_sync: r.u8()? != 0,
            ingest_hist_us: r.u64_vec()?,
            query_hist_us: r.u64_vec()?,
            resident_streams: r.u64()?,
            hydrations: r.u64()?,
            evictions: r.u64()?,
        })
    }
}

/// Service-layer metrics snapshot: per-shard counters plus storage-backend
/// op counts (when the deployment meters its KV store).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStatsWire {
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardStatsWire>,
    /// KV `get` operations observed by the metered store.
    pub store_gets: u64,
    /// KV `put` operations.
    pub store_puts: u64,
    /// KV `delete` operations.
    pub store_deletes: u64,
    /// KV `scan_prefix` operations.
    pub store_scans: u64,
    /// Value bytes returned by `get`/`scan_prefix` (the paper's
    /// Cassandra-side read traffic, §4.6).
    pub store_bytes_read: u64,
    /// Key+value bytes written by `put`.
    pub store_bytes_written: u64,
}

const REQ_CREATE: u8 = 1;
const REQ_DELETE_STREAM: u8 = 2;
const REQ_INSERT: u8 = 3;
const REQ_GET_RANGE: u8 = 4;
const REQ_GET_STAT: u8 = 5;
const REQ_DELETE_RANGE: u8 = 6;
const REQ_ROLLUP: u8 = 7;
const REQ_INFO: u8 = 8;
const REQ_PUT_GRANT: u8 = 9;
const REQ_GET_GRANTS: u8 = 10;
const REQ_REVOKE: u8 = 11;
const REQ_PUT_ENV: u8 = 12;
const REQ_GET_ENV: u8 = 13;
const REQ_PING: u8 = 14;
const REQ_INSERT_LIVE: u8 = 15;
const REQ_GET_LIVE: u8 = 16;
const REQ_PUT_ATT: u8 = 17;
const REQ_GET_ATT: u8 = 18;
const REQ_GET_PROOF: u8 = 19;
const REQ_GET_VRANGE: u8 = 20;
const REQ_INSERT_BATCH: u8 = 21;
const REQ_STATS: u8 = 22;
const REQ_LIST_STREAMS: u8 = 23;
const REQ_EXPORT_STREAM: u8 = 24;
/// Trace-context envelope: `[tag][u128 trace id][u64 span id][inner
/// request]`. Not a [`Request`] variant — the envelope is peeled off by
/// [`split_trace`] at the transport boundary before request decoding, so
/// handlers (and replies) are identical whether or not a request arrived
/// traced.
const REQ_TRACED: u8 = 25;

/// Encoded size of the trace envelope prefix.
pub const TRACE_PREFIX_LEN: usize = 1 + 16 + 8;

/// Appends the trace-context envelope prefix to `out`; the encoded inner
/// request must follow. Requests sent *without* a context are encoded
/// exactly as before this envelope existed — that is the
/// backward-compatibility story: an untraced sender interops with any
/// peer, and a traced sender can detect a legacy peer (see
/// [`peer_lacks_trace_support`]) and fall back to untraced encoding.
pub fn encode_trace_prefix(ctx: TraceContext, out: &mut Vec<u8>) {
    let mut w = ByteWriter::with_vec(std::mem::take(out));
    w.u8(REQ_TRACED).u128(ctx.trace_id).u64(ctx.span_id);
    *out = w.into_bytes();
}

/// Peels an optional trace-context envelope off a request body: returns
/// the context (if the body is enveloped) and the inner request bytes.
/// Bodies that don't start with the envelope tag pass through untouched
/// — every pre-envelope peer's bytes take that path. Nested envelopes
/// are not a thing; the inner bytes must decode as a plain request.
pub fn split_trace(body: &[u8]) -> Result<(Option<TraceContext>, &[u8]), WireError> {
    if body.first() != Some(&REQ_TRACED) {
        return Ok((None, body));
    }
    if body.len() < TRACE_PREFIX_LEN {
        return Err(WireError::Truncated);
    }
    let mut r = ByteReader::new(&body[1..TRACE_PREFIX_LEN]);
    let ctx = TraceContext {
        trace_id: r.u128()?,
        span_id: r.u64()?,
    };
    Ok((Some(ctx), &body[TRACE_PREFIX_LEN..]))
}

/// Does this app-level error text mean the peer rejected the trace
/// envelope because it predates it? A decode-level rejection happens
/// before any dispatch — the peer applied nothing — so the sender may
/// safely retry the same request untraced, even a mutation.
pub fn peer_lacks_trace_support(msg: &str) -> bool {
    msg.contains("unknown message tag 25")
}

impl Request {
    /// True for requests that change server state. The distinction drives
    /// two policies in multi-node deployments: replicated writes go
    /// primary-then-backup while reads may fail over, and the pooled TCP
    /// client retries only non-mutating requests on a stale connection
    /// (a lost mutating exchange may already have been applied).
    pub fn is_mutation(&self) -> bool {
        match self {
            Request::CreateStream { .. }
            | Request::DeleteStream { .. }
            | Request::Insert { .. }
            | Request::InsertLive { .. }
            | Request::InsertBatch { .. }
            | Request::DeleteRange { .. }
            | Request::Rollup { .. }
            | Request::PutGrant { .. }
            | Request::RevokeGrants { .. }
            | Request::PutEnvelopes { .. }
            | Request::PutAttestation { .. } => true,
            Request::GetLive { .. }
            | Request::GetRange { .. }
            | Request::GetStatRange { .. }
            | Request::StreamInfo { .. }
            | Request::GetGrants { .. }
            | Request::GetEnvelopes { .. }
            | Request::GetAttestation { .. }
            | Request::GetRangeProof { .. }
            | Request::GetVerifiedRange { .. }
            | Request::Stats
            | Request::ListStreams { .. }
            | Request::ExportStream { .. }
            | Request::Ping => false,
        }
    }

    /// Serializes the request body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the serialized request to `out`, reusing its capacity —
    /// the per-connection scratch-buffer path (byte-identical to
    /// [`encode`](Self::encode), pinned by the wire property tests).
    // lint: deny(alloc)
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::with_vec(std::mem::take(out));
        match self {
            Request::CreateStream {
                stream,
                t0,
                delta_ms,
                digest_width,
            } => {
                w.u8(REQ_CREATE)
                    .u128(*stream)
                    .i64(*t0)
                    .u64(*delta_ms)
                    .u32(*digest_width);
            }
            Request::DeleteStream { stream } => {
                w.u8(REQ_DELETE_STREAM).u128(*stream);
            }
            Request::Insert { chunk } => {
                w.u8(REQ_INSERT).bytes(chunk);
            }
            Request::InsertLive { record } => {
                w.u8(REQ_INSERT_LIVE).bytes(record);
            }
            Request::GetLive { stream, ts_s, ts_e } => {
                w.u8(REQ_GET_LIVE).u128(*stream).i64(*ts_s).i64(*ts_e);
            }
            Request::GetRange { stream, ts_s, ts_e } => {
                w.u8(REQ_GET_RANGE).u128(*stream).i64(*ts_s).i64(*ts_e);
            }
            Request::GetStatRange {
                streams,
                ts_s,
                ts_e,
            } => {
                w.u8(REQ_GET_STAT).u32(streams.len() as u32);
                for s in streams {
                    w.u128(*s);
                }
                w.i64(*ts_s).i64(*ts_e);
            }
            Request::DeleteRange { stream, ts_s, ts_e } => {
                w.u8(REQ_DELETE_RANGE).u128(*stream).i64(*ts_s).i64(*ts_e);
            }
            Request::Rollup {
                stream,
                before_ts,
                keep_level,
            } => {
                w.u8(REQ_ROLLUP)
                    .u128(*stream)
                    .i64(*before_ts)
                    .u8(*keep_level);
            }
            Request::StreamInfo { stream } => {
                w.u8(REQ_INFO).u128(*stream);
            }
            Request::PutGrant {
                stream,
                principal,
                blob,
            } => {
                w.u8(REQ_PUT_GRANT)
                    .u128(*stream)
                    .string(principal)
                    .bytes(blob);
            }
            Request::GetGrants { stream, principal } => {
                w.u8(REQ_GET_GRANTS).u128(*stream).string(principal);
            }
            Request::RevokeGrants { stream, principal } => {
                w.u8(REQ_REVOKE).u128(*stream).string(principal);
            }
            Request::PutEnvelopes {
                stream,
                resolution,
                envelopes,
            } => {
                w.u8(REQ_PUT_ENV)
                    .u128(*stream)
                    .u64(*resolution)
                    .u32(envelopes.len() as u32);
                for (i, b) in envelopes {
                    w.u64(*i).bytes(b);
                }
            }
            Request::GetEnvelopes {
                stream,
                resolution,
                lo,
                hi,
            } => {
                w.u8(REQ_GET_ENV)
                    .u128(*stream)
                    .u64(*resolution)
                    .u64(*lo)
                    .u64(*hi);
            }
            Request::PutAttestation {
                stream,
                attestation,
            } => {
                w.u8(REQ_PUT_ATT).u128(*stream).bytes(attestation);
            }
            Request::GetAttestation { stream } => {
                w.u8(REQ_GET_ATT).u128(*stream);
            }
            Request::GetRangeProof { stream, ts_s, ts_e } => {
                w.u8(REQ_GET_PROOF).u128(*stream).i64(*ts_s).i64(*ts_e);
            }
            Request::GetVerifiedRange { stream, ts_s, ts_e } => {
                w.u8(REQ_GET_VRANGE).u128(*stream).i64(*ts_s).i64(*ts_e);
            }
            Request::InsertBatch { chunks } => {
                w.u8(REQ_INSERT_BATCH).u32(chunks.len() as u32);
                for c in chunks {
                    w.bytes(c);
                }
            }
            Request::Stats => {
                w.u8(REQ_STATS);
            }
            Request::ListStreams { shard } => {
                w.u8(REQ_LIST_STREAMS).u32(*shard);
            }
            Request::ExportStream { stream, from_idx } => {
                w.u8(REQ_EXPORT_STREAM).u128(*stream).u64(*from_idx);
            }
            Request::Ping => {
                w.u8(REQ_PING);
            }
        }
        *out = w.into_bytes();
    }

    /// Parses a request body.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(buf);
        let req = match r.u8()? {
            REQ_CREATE => Request::CreateStream {
                stream: r.u128()?,
                t0: r.i64()?,
                delta_ms: r.u64()?,
                digest_width: r.u32()?,
            },
            REQ_DELETE_STREAM => Request::DeleteStream { stream: r.u128()? },
            REQ_INSERT => Request::Insert { chunk: r.bytes()? },
            REQ_INSERT_LIVE => Request::InsertLive { record: r.bytes()? },
            REQ_GET_LIVE => Request::GetLive {
                stream: r.u128()?,
                ts_s: r.i64()?,
                ts_e: r.i64()?,
            },
            REQ_GET_RANGE => Request::GetRange {
                stream: r.u128()?,
                ts_s: r.i64()?,
                ts_e: r.i64()?,
            },
            REQ_GET_STAT => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut streams = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    streams.push(r.u128()?);
                }
                Request::GetStatRange {
                    streams,
                    ts_s: r.i64()?,
                    ts_e: r.i64()?,
                }
            }
            REQ_DELETE_RANGE => Request::DeleteRange {
                stream: r.u128()?,
                ts_s: r.i64()?,
                ts_e: r.i64()?,
            },
            REQ_ROLLUP => Request::Rollup {
                stream: r.u128()?,
                before_ts: r.i64()?,
                keep_level: r.u8()?,
            },
            REQ_INFO => Request::StreamInfo { stream: r.u128()? },
            REQ_PUT_GRANT => Request::PutGrant {
                stream: r.u128()?,
                principal: r.string()?,
                blob: r.bytes()?,
            },
            REQ_GET_GRANTS => Request::GetGrants {
                stream: r.u128()?,
                principal: r.string()?,
            },
            REQ_REVOKE => Request::RevokeGrants {
                stream: r.u128()?,
                principal: r.string()?,
            },
            REQ_PUT_ENV => {
                let stream = r.u128()?;
                let resolution = r.u64()?;
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut envelopes = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let i = r.u64()?;
                    envelopes.push((i, r.bytes()?));
                }
                Request::PutEnvelopes {
                    stream,
                    resolution,
                    envelopes,
                }
            }
            REQ_GET_ENV => Request::GetEnvelopes {
                stream: r.u128()?,
                resolution: r.u64()?,
                lo: r.u64()?,
                hi: r.u64()?,
            },
            REQ_PUT_ATT => Request::PutAttestation {
                stream: r.u128()?,
                attestation: r.bytes()?,
            },
            REQ_GET_ATT => Request::GetAttestation { stream: r.u128()? },
            REQ_GET_PROOF => Request::GetRangeProof {
                stream: r.u128()?,
                ts_s: r.i64()?,
                ts_e: r.i64()?,
            },
            REQ_GET_VRANGE => Request::GetVerifiedRange {
                stream: r.u128()?,
                ts_s: r.i64()?,
                ts_e: r.i64()?,
            },
            REQ_INSERT_BATCH => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut chunks = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    chunks.push(r.bytes()?);
                }
                Request::InsertBatch { chunks }
            }
            REQ_STATS => Request::Stats,
            REQ_LIST_STREAMS => Request::ListStreams { shard: r.u32()? },
            REQ_EXPORT_STREAM => Request::ExportStream {
                stream: r.u128()?,
                from_idx: r.u64()?,
            },
            REQ_PING => Request::Ping,
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(req)
    }
}

const RESP_OK: u8 = 1;
const RESP_ERR: u8 = 2;
const RESP_CHUNKS: u8 = 3;
const RESP_STAT: u8 = 4;
const RESP_BLOBS: u8 = 5;
const RESP_ENV: u8 = 6;
const RESP_INFO: u8 = 7;
const RESP_PONG: u8 = 8;
const RESP_RECORDS: u8 = 9;
const RESP_ATTESTED: u8 = 10;
const RESP_VCHUNKS: u8 = 11;
const RESP_BATCH: u8 = 12;
const RESP_SERVICE_STATS: u8 = 13;
const RESP_STREAM_LIST: u8 = 14;
const RESP_STREAM_CHUNKS: u8 = 15;

impl Response {
    /// Serializes the response body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the serialized response to `out`, reusing its capacity
    /// (byte-identical to [`encode`](Self::encode)).
    // lint: deny(alloc)
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::with_vec(std::mem::take(out));
        match self {
            Response::Ok => {
                w.u8(RESP_OK);
            }
            Response::Error(msg) => {
                w.u8(RESP_ERR).string(msg);
            }
            Response::Chunks(chunks) => {
                w.u8(RESP_CHUNKS).u32(chunks.len() as u32);
                for c in chunks {
                    w.bytes(c);
                }
            }
            Response::Records(recs) => {
                w.u8(RESP_RECORDS).u32(recs.len() as u32);
                for c in recs {
                    w.bytes(c);
                }
            }
            Response::Stat(s) => {
                w.u8(RESP_STAT).u32(s.parts.len() as u32);
                for (stream, lo, hi) in &s.parts {
                    w.u128(*stream).u64(*lo).u64(*hi);
                }
                w.u64_vec(&s.agg);
            }
            Response::Blobs(blobs) => {
                w.u8(RESP_BLOBS).u32(blobs.len() as u32);
                for b in blobs {
                    w.bytes(b);
                }
            }
            Response::Envelopes(envs) => {
                w.u8(RESP_ENV).u32(envs.len() as u32);
                for (i, b) in envs {
                    w.u64(*i).bytes(b);
                }
            }
            Response::Info(info) => {
                w.u8(RESP_INFO);
                info.encode(&mut w);
            }
            Response::Attested { attestation, proof } => {
                w.u8(RESP_ATTESTED).bytes(attestation).bytes(proof);
            }
            Response::VerifiedChunks {
                attestation,
                proof,
                chunks,
            } => {
                w.u8(RESP_VCHUNKS)
                    .bytes(attestation)
                    .bytes(proof)
                    .u32(chunks.len() as u32);
                for c in chunks {
                    w.bytes(c);
                }
            }
            Response::Batch { errors } => {
                w.u8(RESP_BATCH).u32(errors.len() as u32);
                for (i, msg) in errors {
                    w.u32(*i).string(msg);
                }
            }
            Response::ServiceStats(stats) => {
                w.u8(RESP_SERVICE_STATS).u32(stats.shards.len() as u32);
                for s in &stats.shards {
                    s.encode(&mut w);
                }
                w.u64(stats.store_gets)
                    .u64(stats.store_puts)
                    .u64(stats.store_deletes)
                    .u64(stats.store_scans)
                    .u64(stats.store_bytes_read)
                    .u64(stats.store_bytes_written);
            }
            Response::StreamList(infos) => {
                w.u8(RESP_STREAM_LIST).u32(infos.len() as u32);
                for info in infos {
                    info.encode(&mut w);
                }
            }
            Response::StreamChunks {
                chunks,
                next_idx,
                done,
            } => {
                w.u8(RESP_STREAM_CHUNKS).u32(chunks.len() as u32);
                for c in chunks {
                    w.bytes(c);
                }
                w.u64(*next_idx).u8(u8::from(*done));
            }
            Response::Pong => {
                w.u8(RESP_PONG);
            }
        }
        *out = w.into_bytes();
    }

    /// Parses a response body.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(buf);
        let resp = match r.u8()? {
            RESP_OK => Response::Ok,
            RESP_ERR => Response::Error(r.string()?),
            RESP_CHUNKS => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut chunks = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    chunks.push(r.bytes()?);
                }
                Response::Chunks(chunks)
            }
            RESP_STAT => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut parts = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    parts.push((r.u128()?, r.u64()?, r.u64()?));
                }
                Response::Stat(StatReply {
                    parts,
                    agg: r.u64_vec()?,
                })
            }
            RESP_BLOBS => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut blobs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    blobs.push(r.bytes()?);
                }
                Response::Blobs(blobs)
            }
            RESP_ENV => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut envs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let i = r.u64()?;
                    envs.push((i, r.bytes()?));
                }
                Response::Envelopes(envs)
            }
            RESP_INFO => Response::Info(StreamInfoWire::decode(&mut r)?),
            RESP_RECORDS => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut recs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    recs.push(r.bytes()?);
                }
                Response::Records(recs)
            }
            RESP_ATTESTED => Response::Attested {
                attestation: r.bytes()?,
                proof: r.bytes()?,
            },
            RESP_VCHUNKS => {
                let attestation = r.bytes()?;
                let proof = r.bytes()?;
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut chunks = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    chunks.push(r.bytes()?);
                }
                Response::VerifiedChunks {
                    attestation,
                    proof,
                    chunks,
                }
            }
            RESP_BATCH => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut errors = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let i = r.u32()?;
                    errors.push((i, r.string()?));
                }
                Response::Batch { errors }
            }
            RESP_SERVICE_STATS => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut shards = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    shards.push(ShardStatsWire::decode(&mut r)?);
                }
                Response::ServiceStats(ServiceStatsWire {
                    shards,
                    store_gets: r.u64()?,
                    store_puts: r.u64()?,
                    store_deletes: r.u64()?,
                    store_scans: r.u64()?,
                    store_bytes_read: r.u64()?,
                    store_bytes_written: r.u64()?,
                })
            }
            RESP_STREAM_LIST => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut infos = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    infos.push(StreamInfoWire::decode(&mut r)?);
                }
                Response::StreamList(infos)
            }
            RESP_STREAM_CHUNKS => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut chunks = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    chunks.push(r.bytes()?);
                }
                Response::StreamChunks {
                    chunks,
                    next_idx: r.u64()?,
                    done: r.u8()? != 0,
                }
            }
            RESP_PONG => Response::Pong,
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// A zero-copy decode of a [`Request`]: the bulk-payload-carrying ingest
/// variants borrow their byte fields straight from the frame buffer; every
/// other variant decodes to its owned form (their fields are a few dozen
/// bytes — borrowing them buys nothing). `decode` + [`to_owned`]
/// is equivalent to [`Request::decode`] for every variant (pinned by the
/// wire property tests), so handlers can opt into the borrowed path for
/// exactly the requests where it pays.
///
/// [`to_owned`]: RequestRef::to_owned
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestRef<'a> {
    /// [`Request::Insert`] with the chunk bytes borrowed from the frame.
    Insert {
        /// `EncryptedChunk::to_bytes()` payload.
        chunk: &'a [u8],
    },
    /// [`Request::InsertLive`] with the record bytes borrowed.
    InsertLive {
        /// `SealedRecord::to_bytes()` payload.
        record: &'a [u8],
    },
    /// [`Request::InsertBatch`] with every chunk borrowed.
    InsertBatch {
        /// `EncryptedChunk::to_bytes()` payloads.
        chunks: Vec<&'a [u8]>,
    },
    /// Any other request, decoded owned.
    Other(Request),
}

impl<'a> RequestRef<'a> {
    /// Parses a request body without copying ingest payloads.
    pub fn decode(buf: &'a [u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(buf);
        let req = match r.u8()? {
            REQ_INSERT => RequestRef::Insert {
                chunk: r.bytes_borrowed()?,
            },
            REQ_INSERT_LIVE => RequestRef::InsertLive {
                record: r.bytes_borrowed()?,
            },
            REQ_INSERT_BATCH => {
                let n = r.u32()? as usize;
                if n > MAX_REPEATED {
                    return Err(WireError::TooLarge(n));
                }
                let mut chunks = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    chunks.push(r.bytes_borrowed()?);
                }
                RequestRef::InsertBatch { chunks }
            }
            // Every other variant has no bulk payload: reuse the owned
            // decoder so the two paths cannot drift.
            _ => return Request::decode(buf).map(RequestRef::Other),
        };
        r.finish()?;
        Ok(req)
    }

    /// Copies the borrows into an owned [`Request`].
    pub fn to_owned(self) -> Request {
        match self {
            RequestRef::Insert { chunk } => Request::Insert {
                chunk: chunk.to_vec(),
            },
            RequestRef::InsertLive { record } => Request::InsertLive {
                record: record.to_vec(),
            },
            RequestRef::InsertBatch { chunks } => Request::InsertBatch {
                chunks: chunks.into_iter().map(<[u8]>::to_vec).collect(),
            },
            RequestRef::Other(req) => req,
        }
    }
}

/// A zero-copy decode of a [`Response`]: the chunk/record/blob-carrying
/// variants borrow their payloads from the frame buffer, everything else
/// decodes owned. `decode` + [`to_owned`](ResponseRef::to_owned) is
/// equivalent to [`Response::decode`] for every variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseRef<'a> {
    /// [`Response::Chunks`] with every chunk borrowed.
    Chunks(Vec<&'a [u8]>),
    /// [`Response::Records`] with every record borrowed.
    Records(Vec<&'a [u8]>),
    /// [`Response::Blobs`] with every blob borrowed.
    Blobs(Vec<&'a [u8]>),
    /// [`Response::VerifiedChunks`] with proof material and chunks borrowed.
    VerifiedChunks {
        /// `RootAttestation::encode()` bytes.
        attestation: &'a [u8],
        /// Open `RangeProof::encode()` bytes.
        proof: &'a [u8],
        /// The chunk bytes, in chunk order.
        chunks: Vec<&'a [u8]>,
    },
    /// [`Response::StreamChunks`] with every chunk borrowed.
    StreamChunks {
        /// The page's chunk bytes, in index order.
        chunks: Vec<&'a [u8]>,
        /// Index to request the next page from.
        next_idx: u64,
        /// No further chunks are exportable.
        done: bool,
    },
    /// Any other response, decoded owned.
    Other(Response),
}

impl<'a> ResponseRef<'a> {
    /// Parses a response body without copying bulk payloads.
    pub fn decode(buf: &'a [u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(buf);
        let read_list = |r: &mut ByteReader<'a>| -> Result<Vec<&'a [u8]>, WireError> {
            let n = r.u32()? as usize;
            if n > MAX_REPEATED {
                return Err(WireError::TooLarge(n));
            }
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(r.bytes_borrowed()?);
            }
            Ok(items)
        };
        let resp = match r.u8()? {
            RESP_CHUNKS => ResponseRef::Chunks(read_list(&mut r)?),
            RESP_RECORDS => ResponseRef::Records(read_list(&mut r)?),
            RESP_BLOBS => ResponseRef::Blobs(read_list(&mut r)?),
            RESP_VCHUNKS => ResponseRef::VerifiedChunks {
                attestation: r.bytes_borrowed()?,
                proof: r.bytes_borrowed()?,
                chunks: read_list(&mut r)?,
            },
            RESP_STREAM_CHUNKS => ResponseRef::StreamChunks {
                chunks: read_list(&mut r)?,
                next_idx: r.u64()?,
                done: r.u8()? != 0,
            },
            _ => return Response::decode(buf).map(ResponseRef::Other),
        };
        r.finish()?;
        Ok(resp)
    }

    /// Copies the borrows into an owned [`Response`].
    pub fn to_owned(self) -> Response {
        let own = |items: Vec<&[u8]>| items.into_iter().map(<[u8]>::to_vec).collect();
        match self {
            ResponseRef::Chunks(c) => Response::Chunks(own(c)),
            ResponseRef::Records(c) => Response::Records(own(c)),
            ResponseRef::Blobs(c) => Response::Blobs(own(c)),
            ResponseRef::VerifiedChunks {
                attestation,
                proof,
                chunks,
            } => Response::VerifiedChunks {
                attestation: attestation.to_vec(),
                proof: proof.to_vec(),
                chunks: own(chunks),
            },
            ResponseRef::StreamChunks {
                chunks,
                next_idx,
                done,
            } => Response::StreamChunks {
                chunks: own(chunks),
                next_idx,
                done,
            },
            ResponseRef::Other(resp) => resp,
        }
    }
}

/// Streaming encoder for an [`Request::InsertBatch`] body: callers append
/// each chunk's serialized form straight into the frame buffer instead of
/// first collecting a `Vec<Vec<u8>>` of copies. The produced bytes are
/// identical to encoding the equivalent owned request.
///
/// ```
/// use timecrypt_wire::messages::{BatchEncoder, Request};
///
/// let mut frame = Vec::new();
/// let mut enc = BatchEncoder::begin(&mut frame);
/// for part in [&b"abc"[..], &b""[..]] {
///     enc.append_with(part.len(), |buf| buf.extend_from_slice(part));
/// }
/// enc.finish();
/// assert_eq!(
///     frame,
///     Request::InsertBatch { chunks: vec![b"abc".to_vec(), vec![]] }.encode(),
/// );
/// ```
pub struct BatchEncoder<'a> {
    buf: &'a mut Vec<u8>,
    count_pos: usize,
    count: u32,
}

impl<'a> BatchEncoder<'a> {
    /// Starts an `InsertBatch` body in `buf` (appending; existing content
    /// is preserved).
    pub fn begin(buf: &'a mut Vec<u8>) -> Self {
        buf.push(REQ_INSERT_BATCH);
        let count_pos = buf.len();
        buf.extend_from_slice(&0u32.to_le_bytes());
        BatchEncoder {
            buf,
            count_pos,
            count: 0,
        }
    }

    /// Appends one length-prefixed chunk of exactly `len` bytes, produced
    /// by `write` appending into the buffer (e.g.
    /// `EncryptedChunk::encode_into`).
    ///
    /// # Panics
    /// When `write` appends a different number of bytes than `len` — the
    /// length prefix would lie and the frame would be unparseable.
    pub fn append_with(&mut self, len: usize, write: impl FnOnce(&mut Vec<u8>)) {
        self.buf.extend_from_slice(&(len as u32).to_le_bytes());
        let start = self.buf.len();
        write(self.buf);
        assert_eq!(
            self.buf.len() - start,
            len,
            "batch entry length prefix must match the bytes written"
        );
        self.count += 1;
    }

    /// Patches the element count in. The body is complete afterwards.
    pub fn finish(self) {
        self.buf[self.count_pos..self.count_pos + 4].copy_from_slice(&self.count.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::CreateStream {
                stream: 1,
                t0: -5,
                delta_ms: 10_000,
                digest_width: 19,
            },
            Request::DeleteStream { stream: u128::MAX },
            Request::Insert {
                chunk: vec![1, 2, 3],
            },
            Request::InsertLive { record: vec![4, 5] },
            Request::GetLive {
                stream: 7,
                ts_s: -3,
                ts_e: 44,
            },
            Request::GetRange {
                stream: 7,
                ts_s: 0,
                ts_e: 1000,
            },
            Request::GetStatRange {
                streams: vec![1, 2, 3],
                ts_s: -10,
                ts_e: 10,
            },
            Request::DeleteRange {
                stream: 7,
                ts_s: 5,
                ts_e: 6,
            },
            Request::Rollup {
                stream: 7,
                before_ts: 99,
                keep_level: 2,
            },
            Request::StreamInfo { stream: 0 },
            Request::PutGrant {
                stream: 1,
                principal: "dr-alice".into(),
                blob: vec![9; 40],
            },
            Request::GetGrants {
                stream: 1,
                principal: "dr-alice".into(),
            },
            Request::RevokeGrants {
                stream: 1,
                principal: "dr-alice".into(),
            },
            Request::PutEnvelopes {
                stream: 2,
                resolution: 6,
                envelopes: vec![(0, vec![1]), (1, vec![2, 3])],
            },
            Request::GetEnvelopes {
                stream: 2,
                resolution: 6,
                lo: 3,
                hi: 9,
            },
            Request::PutAttestation {
                stream: 4,
                attestation: vec![8; 128],
            },
            Request::GetAttestation { stream: 4 },
            Request::GetRangeProof {
                stream: 4,
                ts_s: 0,
                ts_e: 500,
            },
            Request::GetVerifiedRange {
                stream: 4,
                ts_s: -1,
                ts_e: 500,
            },
            Request::InsertBatch {
                chunks: vec![vec![1, 2, 3], vec![], vec![9; 40]],
            },
            Request::Stats,
            Request::ListStreams { shard: 3 },
            Request::ExportStream {
                stream: 9,
                from_idx: 4096,
            },
            Request::Ping,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Ok,
            Response::Error("boom".into()),
            Response::Chunks(vec![vec![], vec![1, 2]]),
            Response::Records(vec![vec![9], vec![]]),
            Response::Stat(StatReply {
                parts: vec![(1, 0, 10), (2, 5, 7)],
                agg: vec![1, u64::MAX],
            }),
            Response::Blobs(vec![vec![7; 3]]),
            Response::Envelopes(vec![(4, vec![1, 2, 3])]),
            Response::Info(StreamInfoWire {
                stream: 3,
                t0: 1,
                delta_ms: 2,
                digest_width: 4,
                len: 5,
            }),
            Response::Attested {
                attestation: vec![1; 128],
                proof: vec![2, 3],
            },
            Response::VerifiedChunks {
                attestation: vec![1; 128],
                proof: vec![2, 3],
                chunks: vec![vec![4], vec![]],
            },
            Response::Batch {
                errors: vec![(3, "out-of-order".into()), (7, "width".into())],
            },
            Response::Batch { errors: vec![] },
            Response::ServiceStats(ServiceStatsWire {
                shards: vec![
                    ShardStatsWire {
                        shard: 0,
                        streams: 2,
                        ingested_chunks: 100,
                        ingest_errors: 1,
                        queries: 7,
                        query_errors: 0,
                        queue_depth: 3,
                        failovers: 2,
                        replica_errors: 1,
                        promotions: 1,
                        rebuilds: 1,
                        rebuild_chunks_copied: 640,
                        in_sync: true,
                        ingest_hist_us: vec![0, 4, 90, 6],
                        query_hist_us: vec![1, 6],
                        resident_streams: 2,
                        hydrations: 9,
                        evictions: 7,
                    },
                    ShardStatsWire {
                        shard: 1,
                        ..Default::default()
                    },
                ],
                store_gets: 11,
                store_puts: 22,
                store_deletes: 0,
                store_scans: 5,
                store_bytes_read: 4096,
                store_bytes_written: 65_536,
            }),
            Response::StreamList(vec![
                StreamInfoWire {
                    stream: 1,
                    t0: -2,
                    delta_ms: 10_000,
                    digest_width: 2,
                    len: 40,
                },
                StreamInfoWire {
                    stream: 2,
                    t0: 0,
                    delta_ms: 1_000,
                    digest_width: 3,
                    len: 0,
                },
            ]),
            Response::StreamList(vec![]),
            Response::StreamChunks {
                chunks: vec![vec![1, 2, 3], vec![], vec![9; 40]],
                next_idx: 7,
                done: false,
            },
            Response::StreamChunks {
                chunks: vec![],
                next_idx: 0,
                done: true,
            },
            Response::Pong,
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in all_requests() {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn encode_into_matches_encode() {
        for req in all_requests() {
            let mut buf = vec![0x77];
            req.encode_into(&mut buf);
            assert_eq!(buf[0], 0x77, "{req:?}: existing content preserved");
            assert_eq!(&buf[1..], &req.encode()[..], "{req:?}");
        }
        for resp in all_responses() {
            let mut buf = vec![0x77];
            resp.encode_into(&mut buf);
            assert_eq!(&buf[1..], &resp.encode()[..], "{resp:?}");
        }
    }

    #[test]
    fn borrowed_decode_matches_owned_decode() {
        // Every variant: the borrowed decoder round-trips to exactly what
        // the owned decoder produces, and the bulk variants really borrow.
        for req in all_requests() {
            let bytes = req.encode();
            let borrowed = RequestRef::decode(&bytes).unwrap();
            if let RequestRef::Insert { chunk } = &borrowed {
                let range = bytes.as_ptr_range();
                assert!(range.contains(&chunk.as_ptr()), "chunk borrows the frame");
            }
            assert_eq!(borrowed.to_owned(), req, "{req:?}");
        }
        for resp in all_responses() {
            let bytes = resp.encode();
            assert_eq!(
                ResponseRef::decode(&bytes).unwrap().to_owned(),
                resp,
                "{resp:?}"
            );
        }
    }

    #[test]
    fn borrowed_decode_rejects_what_owned_rejects() {
        for req in all_requests() {
            let bytes = req.encode();
            for cut in 0..bytes.len() {
                assert!(
                    RequestRef::decode(&bytes[..cut]).is_err(),
                    "{req:?} cut {cut}"
                );
            }
            let mut trailing = bytes.clone();
            trailing.push(0);
            assert!(RequestRef::decode(&trailing).is_err(), "{req:?} trailing");
        }
        for resp in all_responses() {
            let bytes = resp.encode();
            for cut in 0..bytes.len() {
                assert!(
                    ResponseRef::decode(&bytes[..cut]).is_err(),
                    "{resp:?} cut {cut}"
                );
            }
        }
    }

    #[test]
    fn batch_encoder_matches_owned_request_encoding() {
        let chunks: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![9; 300]];
        let mut frame = vec![0xab]; // pre-existing content survives
        let mut enc = BatchEncoder::begin(&mut frame);
        for c in &chunks {
            enc.append_with(c.len(), |buf| buf.extend_from_slice(c));
        }
        enc.finish();
        assert_eq!(frame[0], 0xab);
        assert_eq!(&frame[1..], &Request::InsertBatch { chunks }.encode()[..]);
        // Empty batch.
        let mut frame = Vec::new();
        BatchEncoder::begin(&mut frame).finish();
        assert_eq!(frame, Request::InsertBatch { chunks: vec![] }.encode());
    }

    #[test]
    #[should_panic(expected = "length prefix")]
    fn batch_encoder_rejects_lying_length() {
        let mut frame = Vec::new();
        let mut enc = BatchEncoder::begin(&mut frame);
        enc.append_with(4, |buf| buf.push(0));
    }

    #[test]
    fn response_roundtrip() {
        for resp in all_responses() {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn truncated_messages_rejected() {
        for req in all_requests() {
            let bytes = req.encode();
            for cut in 0..bytes.len() {
                assert!(Request::decode(&bytes[..cut]).is_err(), "{req:?} cut {cut}");
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert_eq!(Request::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert_eq!(Request::decode(&[200]), Err(WireError::BadTag(200)));
        assert_eq!(Response::decode(&[200]), Err(WireError::BadTag(200)));
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn trace_envelope_roundtrips_every_request() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef_dead_beef_dead_beef_dead_beef,
            span_id: 0x1234_5678_9abc_def0,
        };
        for req in all_requests() {
            let mut body = Vec::new();
            encode_trace_prefix(ctx, &mut body);
            req.encode_into(&mut body);
            let (got_ctx, inner) = split_trace(&body).unwrap();
            assert_eq!(got_ctx, Some(ctx), "{req:?}");
            assert_eq!(Request::decode(inner).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn untraced_bodies_pass_through_split_unchanged() {
        // The compat direction: bytes from a pre-envelope encoder reach
        // the handler exactly as sent.
        for req in all_requests() {
            let bytes = req.encode();
            let (ctx, inner) = split_trace(&bytes).unwrap();
            assert_eq!(ctx, None, "{req:?}");
            assert_eq!(inner, &bytes[..], "{req:?}");
        }
    }

    #[test]
    fn untraced_encoding_is_byte_identical_to_pre_envelope_wire() {
        // With no context attached nothing about request encoding
        // changed: a legacy decoder accepts every new encoder's output.
        // (The legacy decoder is `Request::decode` itself — it still
        // rejects the envelope tag, which is what a legacy peer does.)
        for req in all_requests() {
            assert!(Request::decode(&req.encode()).is_ok(), "{req:?}");
        }
        let mut traced = Vec::new();
        encode_trace_prefix(
            TraceContext {
                trace_id: 1,
                span_id: 2,
            },
            &mut traced,
        );
        Request::Ping.encode_into(&mut traced);
        assert_eq!(Request::decode(&traced), Err(WireError::BadTag(REQ_TRACED)));
        // ...and that rejection is exactly what the sender-side legacy
        // detection keys on.
        let reply = format!("bad request: {}", WireError::BadTag(REQ_TRACED));
        assert!(peer_lacks_trace_support(&reply));
        assert!(!peer_lacks_trace_support("stream 7 not found"));
    }

    #[test]
    fn truncated_trace_envelope_rejected() {
        let ctx = TraceContext {
            trace_id: 9,
            span_id: 9,
        };
        let mut body = Vec::new();
        encode_trace_prefix(ctx, &mut body);
        Request::Ping.encode_into(&mut body);
        for cut in 1..TRACE_PREFIX_LEN {
            assert_eq!(split_trace(&body[..cut]), Err(WireError::Truncated));
        }
        // A bare envelope with no inner request splits fine but the inner
        // decode fails — no request materializes out of nothing.
        let (_, inner) = split_trace(&body[..TRACE_PREFIX_LEN]).unwrap();
        assert!(Request::decode(inner).is_err());
        // Nested envelopes don't decode: the inner bytes must be a plain
        // request.
        let mut nested = Vec::new();
        encode_trace_prefix(ctx, &mut nested);
        encode_trace_prefix(ctx, &mut nested);
        Request::Ping.encode_into(&mut nested);
        let (_, inner) = split_trace(&nested).unwrap();
        assert_eq!(Request::decode(inner), Err(WireError::BadTag(REQ_TRACED)));
    }
}
