//! Property-based fuzzing of the wire codecs: round-trips for arbitrary
//! field values; no panics on arbitrary bytes.

use proptest::prelude::*;
use timecrypt_wire::messages::{
    encode_trace_prefix, split_trace, Request, RequestRef, Response, ResponseRef, ServiceStatsWire,
    ShardStatsWire, StatReply, StreamInfoWire, TRACE_PREFIX_LEN,
};
use timecrypt_wire::TraceContext;

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u128>(), any::<i64>(), any::<u64>(), any::<u32>()).prop_map(
            |(stream, t0, delta_ms, digest_width)| Request::CreateStream {
                stream,
                t0,
                delta_ms,
                digest_width
            }
        ),
        any::<u128>().prop_map(|stream| Request::DeleteStream { stream }),
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(|chunk| Request::Insert { chunk }),
        (any::<u128>(), any::<i64>(), any::<i64>())
            .prop_map(|(stream, ts_s, ts_e)| Request::GetRange { stream, ts_s, ts_e }),
        (
            proptest::collection::vec(any::<u128>(), 0..10),
            any::<i64>(),
            any::<i64>()
        )
            .prop_map(|(streams, ts_s, ts_e)| Request::GetStatRange {
                streams,
                ts_s,
                ts_e
            }),
        (
            any::<u128>(),
            "[a-z0-9-]{0,30}",
            proptest::collection::vec(any::<u8>(), 0..100)
        )
            .prop_map(|(stream, principal, blob)| Request::PutGrant {
                stream,
                principal,
                blob
            }),
        (
            any::<u128>(),
            any::<u64>(),
            proptest::collection::vec(
                (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..40)),
                0..8
            )
        )
            .prop_map(|(stream, resolution, envelopes)| Request::PutEnvelopes {
                stream,
                resolution,
                envelopes
            }),
        proptest::collection::vec(any::<u8>(), 0..120)
            .prop_map(|record| Request::InsertLive { record }),
        (any::<u128>(), any::<i64>(), any::<i64>())
            .prop_map(|(stream, ts_s, ts_e)| Request::GetLive { stream, ts_s, ts_e }),
        (
            any::<u128>(),
            proptest::collection::vec(any::<u8>(), 0..160)
        )
            .prop_map(|(stream, attestation)| Request::PutAttestation {
                stream,
                attestation
            }),
        any::<u128>().prop_map(|stream| Request::GetAttestation { stream }),
        (any::<u128>(), any::<i64>(), any::<i64>())
            .prop_map(|(stream, ts_s, ts_e)| Request::GetRangeProof { stream, ts_s, ts_e }),
        (any::<u128>(), any::<i64>(), any::<i64>())
            .prop_map(|(stream, ts_s, ts_e)| Request::GetVerifiedRange { stream, ts_s, ts_e }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..80), 0..10)
            .prop_map(|chunks| Request::InsertBatch { chunks }),
        Just(Request::Stats),
        Just(Request::Ping),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        Just(Response::Pong),
        "[ -~]{0,60}".prop_map(Response::Error),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 0..8)
            .prop_map(Response::Chunks),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 0..8)
            .prop_map(Response::Records),
        (
            proptest::collection::vec(any::<u8>(), 0..160),
            proptest::collection::vec(any::<u8>(), 0..160)
        )
            .prop_map(|(attestation, proof)| Response::Attested { attestation, proof }),
        (
            proptest::collection::vec(any::<u8>(), 0..160),
            proptest::collection::vec(any::<u8>(), 0..160),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..6),
        )
            .prop_map(|(attestation, proof, chunks)| Response::VerifiedChunks {
                attestation,
                proof,
                chunks
            }),
        (
            proptest::collection::vec((any::<u128>(), any::<u64>(), any::<u64>()), 0..6),
            proptest::collection::vec(any::<u64>(), 0..20),
        )
            .prop_map(|(parts, agg)| Response::Stat(StatReply { parts, agg })),
        (
            any::<u128>(),
            any::<i64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>()
        )
            .prop_map(|(stream, t0, delta_ms, digest_width, len)| Response::Info(
                StreamInfoWire {
                    stream,
                    t0,
                    delta_ms,
                    digest_width,
                    len
                }
            )),
        proptest::collection::vec((any::<u32>(), "[ -~]{0,40}"), 0..8)
            .prop_map(|errors| Response::Batch { errors }),
        (
            proptest::collection::vec(
                (
                    (any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>()),
                    (any::<u64>(), any::<u64>(), any::<u64>()),
                    (any::<u64>(), any::<u64>()),
                    (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
                    (
                        proptest::collection::vec(any::<u64>(), 0..8),
                        proptest::collection::vec(any::<u64>(), 0..8),
                    ),
                    (any::<u64>(), any::<u64>(), any::<u64>()),
                ),
                0..4,
            ),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>()),
        )
            .prop_map(
                |(
                    shards,
                    (store_gets, store_puts, store_deletes, store_scans),
                    (store_bytes_read, store_bytes_written),
                )| {
                    Response::ServiceStats(ServiceStatsWire {
                        shards: shards
                            .into_iter()
                            .map(
                                |(
                                    (shard, streams, ingested_chunks, ingest_errors),
                                    (queries, query_errors, queue_depth),
                                    (failovers, replica_errors),
                                    (promotions, rebuilds, rebuild_chunks_copied, in_sync),
                                    (ingest_hist_us, query_hist_us),
                                    (resident_streams, hydrations, evictions),
                                )| {
                                    ShardStatsWire {
                                        shard,
                                        streams,
                                        ingested_chunks,
                                        ingest_errors,
                                        queries,
                                        query_errors,
                                        queue_depth,
                                        failovers,
                                        replica_errors,
                                        promotions,
                                        rebuilds,
                                        rebuild_chunks_copied,
                                        in_sync,
                                        ingest_hist_us,
                                        query_hist_us,
                                        resident_streams,
                                        hydrations,
                                        evictions,
                                    }
                                },
                            )
                            .collect(),
                        store_gets,
                        store_puts,
                        store_deletes,
                        store_scans,
                        store_bytes_read,
                        store_bytes_written,
                    })
                }
            ),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip(req in arb_request()) {
        let bytes = req.encode();
        prop_assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(resp in arb_response()) {
        let bytes = resp.encode();
        prop_assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    /// `encode_into` is byte-identical to `encode` and appends after any
    /// existing content (the scratch-buffer reuse contract) — including
    /// after a trace-context envelope prefix, the traced-send path.
    #[test]
    fn encode_into_matches_encode(req in arb_request(), resp in arb_response(), prefix in proptest::collection::vec(any::<u8>(), 0..8)) {
        let mut buf = prefix.clone();
        req.encode_into(&mut buf);
        prop_assert_eq!(&buf[..prefix.len()], &prefix[..]);
        prop_assert_eq!(&buf[prefix.len()..], &req.encode()[..]);
        let mut buf = prefix.clone();
        resp.encode_into(&mut buf);
        prop_assert_eq!(&buf[prefix.len()..], &resp.encode()[..]);
        let ctx = TraceContext { trace_id: 7, span_id: 9 };
        let mut buf = Vec::new();
        encode_trace_prefix(ctx, &mut buf);
        prop_assert_eq!(buf.len(), TRACE_PREFIX_LEN);
        req.encode_into(&mut buf);
        prop_assert_eq!(&buf[TRACE_PREFIX_LEN..], &req.encode()[..]);
    }

    /// The trace envelope round-trips over any request, and untraced
    /// bodies pass through `split_trace` unchanged (old-peer interop:
    /// a pre-envelope encoder's bytes reach the handler byte-identical).
    #[test]
    fn trace_envelope_roundtrip(req in arb_request(), trace_id in any::<u128>(), span_id in any::<u64>()) {
        let ctx = TraceContext { trace_id, span_id };
        let mut body = Vec::new();
        encode_trace_prefix(ctx, &mut body);
        req.encode_into(&mut body);
        let (got, inner) = split_trace(&body).unwrap();
        prop_assert_eq!(got, Some(ctx));
        prop_assert_eq!(Request::decode(inner).unwrap(), req.clone());
        let plain = req.encode();
        let (got, inner) = split_trace(&plain).unwrap();
        prop_assert_eq!(got, None);
        prop_assert_eq!(inner, &plain[..]);
    }

    /// `split_trace` never panics on arbitrary bytes.
    #[test]
    fn split_trace_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = split_trace(&bytes);
    }

    /// Borrowed decode == owned decode for every message variant, in both
    /// the success and the reject direction.
    #[test]
    fn borrowed_decode_matches_owned(req in arb_request(), resp in arb_response(), cut_basis in 0usize..10_000) {
        let bytes = req.encode();
        prop_assert_eq!(RequestRef::decode(&bytes).unwrap().to_owned(), req);
        let cut = cut_basis % (bytes.len() + 1);
        prop_assert_eq!(
            RequestRef::decode(&bytes[..cut]).is_ok(),
            Request::decode(&bytes[..cut]).is_ok()
        );
        let bytes = resp.encode();
        prop_assert_eq!(ResponseRef::decode(&bytes).unwrap().to_owned(), resp);
        let cut = cut_basis % (bytes.len() + 1);
        prop_assert_eq!(
            ResponseRef::decode(&bytes[..cut]).is_ok(),
            Response::decode(&bytes[..cut]).is_ok()
        );
    }

    /// Arbitrary bytes never panic the decoders (hostile peers).
    #[test]
    fn decoders_survive_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = RequestRef::decode(&bytes);
        let _ = ResponseRef::decode(&bytes);
    }

    /// Mutating any single byte of a valid message never panics, and if it
    /// decodes, it decodes to *something* well-formed (re-encodable).
    #[test]
    fn single_byte_corruption_safe(req in arb_request(), pos in 0usize..64, flip in 1u8..=255) {
        let mut bytes = req.encode();
        if bytes.is_empty() {
            return Ok(());
        }
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        if let Ok(decoded) = Request::decode(&bytes) {
            let _ = decoded.encode();
        }
    }
}
