//! Seeded fault schedules shared by the store decorator, the transport
//! proxy, the chaos test, and the `faults` bench phase.
//!
//! A [`FaultPlan`] is pure data: a seed plus a list of rules. Every
//! injection decision is a deterministic function of `(seed, rule index,
//! op index)`, so a chaos run is replayed by reusing its printed seed —
//! no RNG state is shared between decorated components, and two
//! decorators built from the same plan make independent but reproducible
//! decisions.

use std::time::Duration;

/// SplitMix64 finalizer: a well-mixed 64-bit hash used for per-op fault
/// decisions. Pure function of its input, so decisions replay exactly.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Tiny deterministic generator (SplitMix64 stream) for building
/// randomized plans and picking chaos workloads. Not cryptographic.
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Which store operation a [`StoreRule`] applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// `KvStore::get`.
    Get,
    /// `KvStore::put`.
    Put,
    /// `KvStore::delete`.
    Delete,
    /// `KvStore::scan_prefix`.
    Scan,
}

/// What a matching store rule injects.
#[derive(Clone, Debug)]
pub enum StoreFault {
    /// Fail the op with an injected `StoreError::Io` without touching the
    /// inner store (a transient backend error).
    Error,
    /// Sleep before performing the op (a slow disk / compaction stall).
    Delay(Duration),
    /// For `put`: persist only a deterministic prefix of the value, then
    /// report failure. The caller never sees an ack; the store is left
    /// holding a torn value — exactly the state a mid-write crash leaves.
    /// Non-put ops treat this as [`StoreFault::Error`].
    TornWrite,
}

/// When a rule fires, in terms of the decorator's op counter.
#[derive(Clone, Copy, Debug)]
pub enum Trigger {
    /// Exactly the n-th matching op (0-based), once.
    Nth(u64),
    /// Every n-th op (`n >= 1`; `op_index % n == 0`).
    EveryNth(u64),
    /// Each op independently with probability `p` per million, decided by
    /// `mix64(seed, rule, op_index)` — deterministic, not sampled.
    PerMillion(u32),
}

impl Trigger {
    /// Whether this trigger fires for op `index` under `seed`/`rule_idx`.
    pub fn fires(&self, seed: u64, rule_idx: usize, index: u64) -> bool {
        match *self {
            Trigger::Nth(n) => index == n,
            Trigger::EveryNth(n) => n > 0 && index.is_multiple_of(n),
            Trigger::PerMillion(p) => {
                let h = mix64(seed ^ mix64(rule_idx as u64) ^ index);
                (h % 1_000_000) < u64::from(p)
            }
        }
    }
}

/// One store-side injection rule.
#[derive(Clone, Debug)]
pub struct StoreRule {
    /// Restrict to one op type; `None` matches every op.
    pub op: Option<OpKind>,
    /// Restrict to keys with this prefix; empty matches every key.
    pub key_prefix: Vec<u8>,
    /// When the rule fires.
    pub when: Trigger,
    /// What it injects.
    pub fault: StoreFault,
}

/// Traffic direction through the [`FaultyTransport`](crate::FaultyTransport)
/// proxy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetDirection {
    /// Client → server frames (requests).
    ToServer,
    /// Server → client frames (responses).
    ToClient,
}

/// What a matching net rule injects, per frame.
#[derive(Clone, Debug)]
pub enum NetFault {
    /// Swallow this one frame (the peer waits for a reply that never
    /// comes — a lost packet past TCP, i.e. a proxy/middlebox drop).
    Drop,
    /// Hold the frame before forwarding (congestion, GC pause).
    Delay(Duration),
    /// From this frame on, swallow everything in this direction while
    /// keeping the connection open: the hung-but-alive peer. Only
    /// deadlines get a client out of this.
    BlackHole,
    /// Close both directions of the connection immediately (RST-style
    /// partition; the classic "dead peer" failure).
    Sever,
}

/// One transport-side injection rule, matched against per-connection,
/// per-direction frame counters.
#[derive(Clone, Debug)]
pub struct NetRule {
    /// Restrict to one direction; `None` matches both.
    pub direction: Option<NetDirection>,
    /// When the rule fires.
    pub when: Trigger,
    /// What it injects.
    pub fault: NetFault,
}

/// A complete, seeded fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed all probabilistic triggers derive from; printing it is enough
    /// to replay the run.
    pub seed: u64,
    /// Store-side rules, evaluated in order; first match wins.
    pub store_rules: Vec<StoreRule>,
    /// Transport-side rules, evaluated in order; first match wins.
    pub net_rules: Vec<NetRule>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful to disable faults at runtime).
    pub fn quiet() -> Self {
        FaultPlan::default()
    }

    /// Builder: appends a store rule.
    pub fn with_store_rule(mut self, rule: StoreRule) -> Self {
        self.store_rules.push(rule);
        self
    }

    /// Builder: appends a net rule.
    pub fn with_net_rule(mut self, rule: NetRule) -> Self {
        self.net_rules.push(rule);
        self
    }

    /// The randomized chaos schedule: moderate rates of transient store
    /// errors and delays plus per-frame transport drops/delays, all
    /// derived from `seed`. Severity is tuned so a retrying client makes
    /// progress (no unconditional black-hole/sever — the chaos test adds
    /// those explicitly when it wants them).
    pub fn randomized(seed: u64) -> Self {
        // Domain separation: plan construction must not reuse the raw seed
        // stream that per-op triggers draw from.
        let mut rng = DetRng::new(seed ^ 0x5eed_91a7_0fa1_7c0d);
        let store_err = 5_000 + rng.below(20_000) as u32; // 0.5%–2.5%
        let store_delay = 5_000 + rng.below(10_000) as u32; // 0.5%–1.5%
        let delay_ms = 1 + rng.below(10); // 1–10 ms stalls
        let net_drop = 2_000 + rng.below(8_000) as u32; // 0.2%–1%
        let net_delay = 5_000 + rng.below(10_000) as u32;
        FaultPlan {
            seed,
            store_rules: vec![
                StoreRule {
                    op: None,
                    key_prefix: Vec::new(),
                    when: Trigger::PerMillion(store_err),
                    fault: StoreFault::Error,
                },
                StoreRule {
                    op: Some(OpKind::Put),
                    key_prefix: Vec::new(),
                    when: Trigger::PerMillion(store_delay),
                    fault: StoreFault::Delay(Duration::from_millis(delay_ms)),
                },
            ],
            net_rules: vec![
                NetRule {
                    direction: None,
                    when: Trigger::PerMillion(net_drop),
                    fault: NetFault::Drop,
                },
                NetRule {
                    direction: Some(NetDirection::ToClient),
                    when: Trigger::PerMillion(net_delay),
                    fault: NetFault::Delay(Duration::from_millis(delay_ms)),
                },
            ],
        }
    }

    /// First store rule matching `(op, key)` that fires at `index`.
    pub fn store_fault(&self, op: OpKind, key: &[u8], index: u64) -> Option<&StoreFault> {
        self.store_rules.iter().enumerate().find_map(|(i, r)| {
            let op_ok = r.op.is_none() || r.op == Some(op);
            let key_ok = key.starts_with(&r.key_prefix);
            (op_ok && key_ok && r.when.fires(self.seed, i, index)).then_some(&r.fault)
        })
    }

    /// First net rule matching `direction` that fires for frame `index`.
    pub fn net_fault(&self, direction: NetDirection, index: u64) -> Option<&NetFault> {
        self.net_rules.iter().enumerate().find_map(|(i, r)| {
            let dir_ok = r.direction.is_none() || r.direction == Some(direction);
            (dir_ok && r.when.fires(self.seed, i, index)).then_some(&r.fault)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_fire_deterministically() {
        let t = Trigger::PerMillion(500_000);
        let a: Vec<bool> = (0..64).map(|i| t.fires(7, 0, i)).collect();
        let b: Vec<bool> = (0..64).map(|i| t.fires(7, 0, i)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "50% trigger never fired in 64 ops");
        assert!(a.iter().any(|&x| !x), "50% trigger always fired");
        // Different seed => different schedule (overwhelmingly likely).
        let c: Vec<bool> = (0..64).map(|i| t.fires(8, 0, i)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn nth_and_every_nth() {
        assert!(Trigger::Nth(3).fires(0, 0, 3));
        assert!(!Trigger::Nth(3).fires(0, 0, 4));
        assert!(Trigger::EveryNth(4).fires(0, 0, 8));
        assert!(!Trigger::EveryNth(4).fires(0, 0, 9));
        assert!(!Trigger::EveryNth(0).fires(0, 0, 0), "n=0 must never fire");
    }

    #[test]
    fn store_rule_matching_respects_op_and_prefix() {
        let plan = FaultPlan {
            seed: 1,
            store_rules: vec![StoreRule {
                op: Some(OpKind::Put),
                key_prefix: b"chunk/".to_vec(),
                when: Trigger::EveryNth(1),
                fault: StoreFault::Error,
            }],
            net_rules: Vec::new(),
        };
        assert!(plan.store_fault(OpKind::Put, b"chunk/1", 0).is_some());
        assert!(plan.store_fault(OpKind::Get, b"chunk/1", 0).is_none());
        assert!(plan.store_fault(OpKind::Put, b"index/1", 0).is_none());
    }

    #[test]
    fn randomized_plans_replay_from_seed() {
        let a = FaultPlan::randomized(42);
        let b = FaultPlan::randomized(42);
        let decisions = |p: &FaultPlan| -> Vec<bool> {
            (0..256)
                .map(|i| p.store_fault(OpKind::Put, b"k", i).is_some())
                .collect()
        };
        assert_eq!(decisions(&a), decisions(&b));
    }
}
