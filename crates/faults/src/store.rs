//! [`FaultyKv`]: a `KvStore` decorator that injects scheduled faults.
//!
//! Follows the decorator idiom of `LatencyKv`/`MeteredKv`: wraps any
//! inner store, consults the shared [`FaultPlan`] on every op, and keeps
//! a per-decorator op counter so a plan's `Nth`/`EveryNth`/`PerMillion`
//! triggers replay exactly under single-threaded drivers.

use crate::plan::{FaultPlan, OpKind, StoreFault};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use timecrypt_store::{KvPairs, KvStore, StoreError};

/// Fault-injecting store decorator. See the crate docs for the plan
/// model; `set_plan` swaps the schedule at runtime (e.g. to go quiet
/// before a verification phase).
pub struct FaultyKv<S> {
    inner: S,
    plan: Mutex<Arc<FaultPlan>>,
    ops: AtomicU64,
    injected: AtomicU64,
}

impl<S> FaultyKv<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyKv {
            inner,
            plan: Mutex::new(Arc::new(plan)),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Replaces the schedule; in-flight ops keep the plan they resolved.
    pub fn set_plan(&self, plan: FaultPlan) {
        let shared = Arc::new(plan);
        match self.plan.lock() {
            Ok(mut p) => *p = shared,
            Err(poisoned) => *poisoned.into_inner() = shared,
        }
    }

    /// Faults injected so far (errors + torn writes + delays).
    pub fn injected_total(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Ops observed so far (the counter triggers are matched against).
    pub fn ops_total(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Resolves the fault (if any) for the op about to run. Delays are
    /// served here so the caller's match only sees `Error`/`TornWrite`.
    fn decide(&self, op: OpKind, key: &[u8]) -> Option<StoreFault> {
        let index = self.ops.fetch_add(1, Ordering::Relaxed);
        let plan = match self.plan.lock() {
            Ok(p) => Arc::clone(&p),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        };
        let fault = plan.store_fault(op, key, index)?.clone();
        self.injected.fetch_add(1, Ordering::Relaxed);
        if let StoreFault::Delay(d) = fault {
            std::thread::sleep(d);
            return None; // delay already served; run the op normally
        }
        Some(fault)
    }
}

fn injected_err() -> StoreError {
    StoreError::Io(io::Error::other("injected store fault"))
}

impl<S: KvStore> KvStore for FaultyKv<S> {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        match self.decide(OpKind::Get, key) {
            None => self.inner.get(key),
            Some(_) => Err(injected_err()),
        }
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        match self.decide(OpKind::Put, key) {
            None => self.inner.put(key, value),
            Some(StoreFault::TornWrite) => {
                // Persist a deterministic strict prefix of the value, then
                // fail: the caller never acks, the store holds torn bytes —
                // the state a mid-write crash leaves behind.
                if !value.is_empty() {
                    let keep =
                        (crate::plan::mix64(self.ops.load(Ordering::Relaxed) ^ key.len() as u64)
                            % value.len() as u64) as usize;
                    self.inner.put(key, &value[..keep])?;
                }
                Err(injected_err())
            }
            Some(_) => Err(injected_err()),
        }
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        match self.decide(OpKind::Delete, key) {
            None => self.inner.delete(key),
            Some(_) => Err(injected_err()),
        }
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<KvPairs, StoreError> {
        match self.decide(OpKind::Scan, prefix) {
            None => self.inner.scan_prefix(prefix),
            Some(_) => Err(injected_err()),
        }
    }
}

/// Convenience constructor used by tests/bench: a shared faulty wrapper
/// over an arbitrary shared store.
pub fn faulty(inner: Arc<dyn KvStore>, plan: FaultPlan) -> Arc<FaultyKv<Arc<dyn KvStore>>> {
    Arc::new(FaultyKv::new(inner, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{StoreRule, Trigger};
    use timecrypt_store::MemKv;

    fn plan_every_put_errors() -> FaultPlan {
        FaultPlan::quiet().with_store_rule(StoreRule {
            op: Some(OpKind::Put),
            key_prefix: Vec::new(),
            when: Trigger::EveryNth(1),
            fault: StoreFault::Error,
        })
    }

    #[test]
    fn injected_error_leaves_inner_untouched() {
        let kv = FaultyKv::new(MemKv::new(), plan_every_put_errors());
        assert!(kv.put(b"k", b"v").is_err());
        assert_eq!(kv.inner().get(b"k").unwrap(), None);
        assert_eq!(kv.injected_total(), 1);
    }

    #[test]
    fn quiet_plan_passes_through() {
        let kv = FaultyKv::new(MemKv::new(), FaultPlan::quiet());
        kv.put(b"k", b"v").unwrap();
        assert_eq!(kv.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        assert_eq!(kv.injected_total(), 0);
    }

    #[test]
    fn nth_trigger_fires_once_then_recovers() {
        let plan = FaultPlan::quiet().with_store_rule(StoreRule {
            op: None,
            key_prefix: Vec::new(),
            when: Trigger::Nth(1),
            fault: StoreFault::Error,
        });
        let kv = FaultyKv::new(MemKv::new(), plan);
        kv.put(b"a", b"1").unwrap(); // op 0
        assert!(kv.put(b"b", b"2").is_err()); // op 1: injected
        kv.put(b"b", b"2").unwrap(); // op 2: fine again
        assert_eq!(kv.get(b"b").unwrap().as_deref(), Some(&b"2"[..]));
    }

    #[test]
    fn torn_write_leaves_strict_prefix_and_no_ack() {
        let plan = FaultPlan::quiet().with_store_rule(StoreRule {
            op: Some(OpKind::Put),
            key_prefix: b"t/".to_vec(),
            when: Trigger::Nth(0),
            fault: StoreFault::TornWrite,
        });
        let kv = FaultyKv::new(MemKv::new(), plan);
        let value = vec![7u8; 64];
        assert!(kv.put(b"t/x", &value).is_err());
        let torn = kv.inner().get(b"t/x").unwrap().unwrap_or_default();
        assert!(torn.len() < value.len(), "torn write kept the full value");
        assert!(value.starts_with(&torn));
    }

    #[test]
    fn set_plan_swaps_at_runtime() {
        let kv = FaultyKv::new(MemKv::new(), plan_every_put_errors());
        assert!(kv.put(b"k", b"v").is_err());
        kv.set_plan(FaultPlan::quiet());
        kv.put(b"k", b"v").unwrap();
    }
}
