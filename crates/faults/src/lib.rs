//! Deterministic fault injection for the TimeCrypt reproduction.
//!
//! The paper's deployment story is long-lived encrypted streams surviving
//! node crashes, slow disks, and flaky networks; this crate is the harness
//! that *manufactures* those conditions on demand, reproducibly:
//!
//! * [`FaultPlan`] — a seeded schedule of fault rules. Every injection
//!   decision is a pure function of `(seed, rule, op index)`, so printing
//!   the seed of a failing chaos run is enough to replay it.
//! * [`FaultyKv`] — a `KvStore` decorator injecting transient errors,
//!   delays, and torn writes by op type and key prefix.
//! * [`FaultyTransport`] — an in-process TCP proxy that drops, delays,
//!   black-holes, or severs individual length-prefixed frames, modelling
//!   lossy links, hung-but-alive peers, and hard partitions.
//!
//! Shared by `tests/chaos.rs`, the timeout-promotion integration test,
//! and the bench `faults` phase — one schedule format for all three.

pub mod net;
pub mod plan;
pub mod store;

pub use net::FaultyTransport;
pub use plan::{
    DetRng, FaultPlan, NetDirection, NetFault, NetRule, OpKind, StoreFault, StoreRule, Trigger,
};
pub use store::{faulty, FaultyKv};
