//! [`FaultyTransport`]: an in-process TCP proxy that injects transport
//! faults per length-prefixed frame.
//!
//! The proxy sits between a `ClientPool` and a node: it accepts on an
//! ephemeral port, dials the upstream for every accepted connection, and
//! pumps frames in both directions, consulting the [`FaultPlan`] for each
//! frame. Because it parses the same `u32 le length || body` framing the
//! wire crate uses, faults land on *message* boundaries — a dropped frame
//! is a lost request or reply, not a byte-level corruption TCP would
//! retransmit around.
//!
//! Frame counters are per connection and per direction, so a plan's
//! `Nth`-style triggers replay under single-connection drivers.

use crate::plan::{FaultPlan, NetDirection, NetFault};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;
use timecrypt_obs::tc_debug;
use timecrypt_wire::MAX_FRAME;

/// Poll granularity for noticing `stop()`/plan swaps while blocked in a
/// socket read.
const TICK: Duration = Duration::from_millis(25);

type SharedPlan = Arc<Mutex<Arc<FaultPlan>>>;

fn plan_snapshot(plan: &SharedPlan) -> Arc<FaultPlan> {
    match plan.lock() {
        Ok(p) => Arc::clone(&p),
        Err(poisoned) => Arc::clone(&poisoned.into_inner()),
    }
}

/// Fault-injecting TCP proxy; see the module docs.
pub struct FaultyTransport {
    local: SocketAddr,
    plan: SharedPlan,
    stop_flag: Arc<AtomicBool>,
    accepter: Option<thread::JoinHandle<()>>,
}

impl FaultyTransport {
    /// Starts a proxy on an ephemeral localhost port, forwarding to
    /// `upstream` under `plan`.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared: SharedPlan = Arc::new(Mutex::new(Arc::new(plan)));
        let stop_flag = Arc::new(AtomicBool::new(false));
        let accepter = {
            let shared = Arc::clone(&shared);
            let stop_flag = Arc::clone(&stop_flag);
            thread::spawn(move || accept_loop(listener, upstream, shared, stop_flag))
        };
        Ok(FaultyTransport {
            local,
            plan: shared,
            stop_flag,
            accepter: Some(accepter),
        })
    }

    /// The address clients should dial instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// Replaces the schedule for frames not yet forwarded (existing
    /// connections pick it up on their next frame).
    pub fn set_plan(&self, plan: FaultPlan) {
        let shared = Arc::new(plan);
        match self.plan.lock() {
            Ok(mut p) => *p = shared,
            Err(poisoned) => *poisoned.into_inner() = shared,
        }
    }

    /// Convenience: from now on swallow every client → server frame while
    /// keeping connections open — the "accepts but never replies" hang.
    pub fn black_hole(&self) {
        self.set_plan(FaultPlan::quiet().with_net_rule(crate::plan::NetRule {
            direction: Some(NetDirection::ToServer),
            when: crate::plan::Trigger::EveryNth(1),
            fault: NetFault::BlackHole,
        }));
    }

    /// Stops accepting and tears down pump threads (connections sever).
    pub fn stop(&mut self) {
        self.stop_flag.store(true, Ordering::Relaxed);
        if let Some(h) = self.accepter.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultyTransport {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: SharedPlan,
    stop_flag: Arc<AtomicBool>,
) {
    while !stop_flag.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((client, _)) => {
                if let Err(e) = splice(client, upstream, &plan, &stop_flag) {
                    tc_debug!("faults.net", "proxy conn setup failed: {e}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(TICK),
            Err(e) => {
                tc_debug!("faults.net", "proxy accept failed: {e}");
                thread::sleep(TICK);
            }
        }
    }
}

/// Dials the upstream and spawns one pump thread per direction.
fn splice(
    client: TcpStream,
    upstream: SocketAddr,
    plan: &SharedPlan,
    stop_flag: &Arc<AtomicBool>,
) -> io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    client.set_read_timeout(Some(TICK))?;
    server.set_read_timeout(Some(TICK))?;
    let c2s = (client.try_clone()?, server.try_clone()?);
    let s2c = (server, client);
    for (dir, (from, to)) in [(NetDirection::ToServer, c2s), (NetDirection::ToClient, s2c)] {
        let plan = Arc::clone(plan);
        let stop_flag = Arc::clone(stop_flag);
        thread::spawn(move || pump(from, to, dir, plan, stop_flag));
    }
    Ok(())
}

/// Forwards frames `from` → `to`, applying the plan per frame. Exits on
/// EOF, stop, sever, or peer error; always shuts both streams down so the
/// sibling pump exits too.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    dir: NetDirection,
    plan: SharedPlan,
    stop_flag: Arc<AtomicBool>,
) {
    let mut index = 0u64;
    let mut swallowing = false;
    while let Ok(Some(body)) = read_frame_interruptible(&mut from, &stop_flag) {
        let decision = plan_snapshot(&plan).net_fault(dir, index).cloned();
        index += 1;
        if swallowing {
            continue;
        }
        match decision {
            Some(NetFault::Drop) => continue,
            Some(NetFault::Delay(d)) => thread::sleep(d),
            Some(NetFault::BlackHole) => {
                swallowing = true;
                continue;
            }
            Some(NetFault::Sever) => break,
            None => {}
        }
        if forward(&mut to, &body).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

fn forward(to: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    to.write_all(&(body.len() as u32).to_le_bytes())?;
    to.write_all(body)?;
    to.flush()
}

/// Reads one `u32 le length || body` frame, retrying on read-timeout
/// ticks (preserving partial state) so a blocked pump can notice `stop`.
/// `Ok(None)` on clean EOF at a frame boundary.
fn read_frame_interruptible(
    from: &mut TcpStream,
    stop_flag: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    if !fill(from, &mut len_buf, stop_flag, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::other("proxy: oversized frame"));
    }
    let mut body = vec![0u8; len];
    if !fill(from, &mut body, stop_flag, false)? {
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    Ok(Some(body))
}

/// Fills `buf`, tolerating timeout ticks. Returns `Ok(false)` on EOF
/// before the first byte when `eof_ok` (clean close), `Err` otherwise.
fn fill(
    from: &mut TcpStream,
    buf: &mut [u8],
    stop_flag: &AtomicBool,
    eof_ok: bool,
) -> io::Result<bool> {
    let mut got = 0usize;
    while got < buf.len() {
        if stop_flag.load(Ordering::Relaxed) {
            return Err(io::Error::other("proxy stopping"));
        }
        match from.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 && eof_ok {
                    Ok(false)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}
