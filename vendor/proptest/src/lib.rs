//! Vendored `proptest` stand-in (vendor/README.md): the strategy and macro
//! surface this workspace's property tests use, driven by a deterministic
//! per-case RNG. Differences from crates.io proptest:
//!
//! * no shrinking — a failing case reports its case index and seed;
//! * `prop_assume!` skips the case instead of drawing a replacement;
//! * string strategies support only `[class]{lo,hi}` character-class
//!   patterns (the two forms used in this repository).
//!
//! Case count defaults to 32 and is overridable with `PROPTEST_CASES`.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*!` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }

    /// Marks the current case as skipped (`prop_assume!`).
    pub fn reject() -> Self {
        TestCaseError(REJECT_MARKER.to_string())
    }
}

const REJECT_MARKER: &str = "\u{1}proptest-reject";

/// Deterministic per-case random source strategies draw from.
pub struct TestRng(StdRng);

impl TestRng {
    fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the property name so each property gets its own
        // stream; the case index advances it.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.0.next_u64() % n
    }
}

/// Runs the cases of one property (used by the `proptest!` expansion).
pub fn run_property<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for i in 0..cfg.cases {
        let mut rng = TestRng::for_case(name, i);
        if let Err(TestCaseError(msg)) = case(&mut rng) {
            if msg == REJECT_MARKER {
                continue;
            }
            panic!("property {name} failed at case {i}/{}: {msg}", cfg.cases);
        }
    }
}

/// A generator of arbitrary values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                let mut v: u128 = 0;
                for _ in 0..std::mem::size_of::<$t>().div_ceil(8) {
                    v = (v << 64) | rng.next_u64() as u128;
                }
                v as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = if span >> 64 == 0 { rng.below(span as u64) as u128 } else {
                    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
                };
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = if span >> 64 == 0 { rng.below(span as u64) as u128 } else {
                    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
                };
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Always produces a clone of a fixed value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Character-class string strategy: patterns of the form `[class]{lo,hi}`.
/// Supports literal characters and `a-z` ranges inside the class (a trailing
/// `-` is literal), which covers the patterns used in this repository.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = rep.parse().ok()?;
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() || hi < lo {
        return None;
    }
    Some((chars, lo, hi))
}

/// One boxed `prop_oneof!` arm.
pub type Arm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between boxed strategy arms (built by `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<Arm<V>>,
}

impl<V> OneOf<V> {
    /// Wraps pre-boxed arms.
    pub fn new(arms: Vec<Arm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.arms[rng.below(self.arms.len() as u64) as usize])(rng)
    }
}

/// Boxes one `prop_oneof!` arm (macro plumbing).
pub fn one_of_arm<S: Strategy + 'static>(s: S) -> Arm<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted vector-length specifications: an exact `usize`, `lo..hi`,
    /// or `lo..=hi` (mirroring proptest's `SizeRange` conversions).
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi_excl: usize,
    }

    /// Vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        let len = len.into();
        VecStrategy {
            element,
            lo: len.lo,
            hi_excl: len.hi_excl,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi_excl - self.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The macro + trait prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &cfg, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "{:?} != {:?}", a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "{:?} != {:?}: {}", a, b, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "{:?} == {:?}", a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "{:?} == {:?}: {}", a, b, format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::one_of_arm($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = super::parse_class_pattern("[a-c-]{2,5}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '-']);
        assert_eq!((lo, hi), (2, 5));
        let (chars, _, _) = super::parse_class_pattern("[ -~]{0,60}").unwrap();
        assert_eq!(chars.len(), 95);
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -4i64..=4, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((b as u8) < 2);
        }

        #[test]
        fn vec_respects_len(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&v));
        }

        #[test]
        fn string_pattern(s in "[a-z0-9-]{0,30}") {
            prop_assert!(s.len() <= 30);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn map_composes(v in (0u64..5).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut out = [0u64; 2];
        for slot in out.iter_mut() {
            let mut got = 0;
            super::run_property("det", &ProptestConfig::with_cases(1), |rng| {
                got = rng.next_u64();
                Ok(())
            });
            *slot = got;
        }
        assert_eq!(out[0], out[1]);
    }
}
