//! Vendored `rand` stand-in (vendor/README.md): the trait surface this
//! workspace uses (`RngCore`, `SeedableRng`, `Rng::gen_range`) plus a
//! [`rngs::StdRng`] built on the ChaCha12 stream cipher — the same core the
//! real rand 0.8 `StdRng` uses — seeded from OS entropy or deterministically.
//!
//! The output stream is *not* bit-compatible with crates.io rand (nothing in
//! this workspace depends on the exact stream, only on determinism under
//! `seed_from_u64` and unpredictability under `from_entropy`).

/// Core RNG operations.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 expansion (deterministic).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Constructs from OS entropy (`/dev/urandom`).
    ///
    /// # Panics
    ///
    /// Panics if no OS entropy source is available — key material must
    /// never silently degrade to a guessable seed.
    fn from_entropy() -> Self {
        let mut seed = Self::Seed::default();
        fill_os_entropy(seed.as_mut());
        Self::from_seed(seed)
    }
}

fn fill_os_entropy(buf: &mut [u8]) {
    use std::io::Read;
    // No silent fallback: `from_entropy` seeds real key material, so a
    // missing or broken entropy source must fail loudly rather than
    // degrade to a guessable time-based seed.
    let mut f = std::fs::File::open("/dev/urandom")
        .expect("no OS entropy source: /dev/urandom unavailable");
    f.read_exact(buf)
        .expect("no OS entropy source: short read from /dev/urandom");
}

/// Extension methods over [`RngCore`] (the subset used here).
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: ChaCha12 keyed by a 32-byte seed.
    #[derive(Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u8; 64],
        pos: usize,
    }

    impl StdRng {
        #[inline(always)]
        fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(16);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(12);
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(8);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(7);
        }

        fn refill(&mut self) {
            const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
            let mut s = [0u32; 16];
            s[..4].copy_from_slice(&SIGMA);
            s[4..12].copy_from_slice(&self.key);
            s[12] = self.counter as u32;
            s[13] = (self.counter >> 32) as u32;
            s[14] = 0;
            s[15] = 0;
            let input = s;
            for _ in 0..6 {
                // 12 rounds = 6 double-rounds (column + diagonal).
                Self::quarter(&mut s, 0, 4, 8, 12);
                Self::quarter(&mut s, 1, 5, 9, 13);
                Self::quarter(&mut s, 2, 6, 10, 14);
                Self::quarter(&mut s, 3, 7, 11, 15);
                Self::quarter(&mut s, 0, 5, 10, 15);
                Self::quarter(&mut s, 1, 6, 11, 12);
                Self::quarter(&mut s, 2, 7, 8, 13);
                Self::quarter(&mut s, 3, 4, 9, 14);
            }
            for i in 0..16 {
                let word = s[i].wrapping_add(input[i]);
                self.buf[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
            }
            self.counter = self.counter.wrapping_add(1);
            self.pos = 0;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                buf: [0u8; 64],
                pos: 64,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            let mut b = [0u8; 4];
            self.fill_bytes(&mut b);
            u32::from_le_bytes(b)
        }

        fn next_u64(&mut self) -> u64 {
            let mut b = [0u8; 8];
            self.fill_bytes(&mut b);
            u64::from_le_bytes(b)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut out = 0;
            while out < dest.len() {
                if self.pos == 64 {
                    self.refill();
                }
                let n = (dest.len() - out).min(64 - self.pos);
                dest[out..out + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
                self.pos += n;
                out += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }

    #[test]
    fn entropy_differs_between_instances() {
        let mut a = StdRng::from_entropy();
        let mut b = StdRng::from_entropy();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let w: i32 = r.gen_range(-10..10);
            assert!((-10..10).contains(&w));
            let u: usize = r.gen_range(5..95);
            assert!((5..95).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_covers_odd_lengths() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 133];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
