//! Vendored `parking_lot` stand-in backed by `std::sync` (vendor/README.md).
//!
//! Same guard-returning API as the real crate (no `Result`s): a poisoned
//! std lock is transparently recovered, matching parking_lot's semantics of
//! not propagating panics through locks.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Mutex guard type (re-exported std guard).
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;
/// Read guard type.
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Write guard type.
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

/// A mutual exclusion primitive (parking_lot-style: `lock()` returns the
/// guard directly).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (parking_lot-style guard-returning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
