//! Vendored `criterion` stand-in (vendor/README.md): same macro/builder
//! surface, backed by a simple calibrated wall-clock timer that reports the
//! median of `sample_size` samples. No statistical analysis, no HTML
//! reports — results print one line per benchmark.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in always times per-batch and excludes setup).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Per-benchmark timing driver passed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    ns_per_iter: f64,
}

/// Target time per sample; iteration counts are calibrated to roughly this.
const SAMPLE_TARGET: Duration = Duration::from_millis(8);

impl Bencher {
    /// Times `routine`, excluding nothing (the common case).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes long enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let el = t.elapsed();
            if el >= SAMPLE_TARGET || iters >= 1 << 24 {
                break;
            }
            let grow = if el.is_zero() {
                16
            } else {
                (SAMPLE_TARGET.as_nanos() / el.as_nanos().max(1) + 1) as u64
            };
            iters = iters.saturating_mul(grow.clamp(2, 16));
        }
        let mut samples: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        // Calibrate a batch count so each sample is long enough to time.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let el = t.elapsed();
            if el >= SAMPLE_TARGET || iters >= 1 << 16 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<50} {value:>10.3} {unit}/iter");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), b.ns_per_iter);
        self
    }

    /// Ends the group (API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        let mut b = Bencher {
            samples,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        report(&id.into(), b.ns_per_iter);
        self
    }

    /// Accepted for API compatibility with `criterion_group!` expansions.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_positive_time() {
        let mut b = Bencher {
            samples: 3,
            ns_per_iter: 0.0,
        };
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn iter_batched_runs() {
        let mut b = Bencher {
            samples: 3,
            ns_per_iter: 0.0,
        };
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.ns_per_iter > 0.0);
    }
}
