//! # TimeCrypt
//!
//! A from-scratch Rust implementation of **TimeCrypt: Encrypted Data Stream
//! Processing at Scale with Cryptographic Access Control** (NSDI 2020).
//!
//! TimeCrypt is an encrypted time series data store: the server ingests and
//! indexes only ciphertext, serves statistical range queries (sum, count,
//! mean, variance, histogram, min/max) directly over encrypted digests via
//! an additively homomorphic scheme (HEAC), and the data owner controls —
//! cryptographically — which time ranges and which temporal *resolutions*
//! each principal can decrypt.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] — HEAC: key-derivation tree, key canceling,
//!   dual key regression, resolution envelopes (the paper's contribution).
//! * [`crypto`] — SHA-256/HMAC, AES-128 (+AES-NI),
//!   AES-GCM, PRGs (all from scratch).
//! * [`chunk`] — data model, digests, compression,
//!   chunk sealing.
//! * [`index`] — the k-ary time-partitioned aggregation
//!   tree with LRU node cache.
//! * [`store`] — KV engines (memory / persistent log /
//!   latency-injected / op-metered).
//! * [`server`] — the untrusted server engine.
//! * [`service`] — the sharded concurrent serving tier:
//!   shard-routed backends (in-process engines and/or remote
//!   `timecrypt-node` processes over TCP, with optional R=2
//!   replication), batched ingest workers, scatter-gather statistical
//!   queries, per-shard metrics.
//! * [`client`] — producer, data owner, consumer.
//! * [`wire`] — framing + TCP transport.
//! * [`faults`] — deterministic fault injection: seeded
//!   `FaultPlan` schedules, a `FaultyKv` store decorator, a
//!   `FaultyTransport` frame-level proxy (chaos tests + bench).
//! * [`baselines`] — Paillier, EC-ElGamal/P-256,
//!   ECIES, ECDSA, ABE cost model.
//! * [`integrity`] — the Verena-style extension
//!   (§3.3): authenticated aggregation proofs and signed root attestations
//!   giving completeness/correctness on top of confidentiality.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the end-to-end owner → producer →
//! consumer flow, `examples/multi_node_cluster.rs` for a replicated
//! two-node cluster with failover, and EXPERIMENTS.md for reproducing the
//! paper's tables and figures.
//!
//! ## Architecture
//!
//! The full deployment architecture — layer diagram (client → coordinator
//! → node → engine → store), shard-routing and replication invariants,
//! and the locking model — is documented in
//! [ARCHITECTURE.md](https://github.com/timecrypt-rs/timecrypt/blob/main/ARCHITECTURE.md)
//! at the repository root.

pub use timecrypt_baselines as baselines;
pub use timecrypt_chunk as chunk;
pub use timecrypt_client as client;
pub use timecrypt_core as core;
pub use timecrypt_crypto as crypto;
pub use timecrypt_faults as faults;
pub use timecrypt_index as index;
pub use timecrypt_integrity as integrity;
pub use timecrypt_server as server;
pub use timecrypt_service as service;
pub use timecrypt_store as store;
pub use timecrypt_wire as wire;
